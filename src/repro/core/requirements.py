"""Requirement lists for the workflow Secure-View problem (Section 4.2).

The workflow Secure-View problem does not re-derive module privacy from
scratch: each module ``m_i`` comes with a *requirement list* ``L_i``
describing which hidden attribute choices make it safe.  The paper studies
two encodings:

* **set constraints** — ``L_i = [(I_i^1, O_i^1), ..., (I_i^{l_i}, O_i^{l_i})]``
  where each pair is an explicit set of input and output attributes whose
  hiding suffices, and
* **cardinality constraints** — ``L_i = [(α_i^1, β_i^1), ...]`` where hiding
  *any* ``α`` input attributes and ``β`` output attributes suffices.

Both are represented here, together with satisfaction checks against a
candidate hidden set, non-redundancy normalization, and derivation from
standalone privacy analysis (:mod:`repro.core.standalone`), which is how the
composition theorems (Theorems 4 and 8) turn standalone guarantees into
workflow requirement lists.  On the kernel backend both derivations ride
the batched mask sweep — candidate subsets are levelled in vectorized
passes over the packed relation, and cardinality lists additionally probe
only the monotone (α, β) safety frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..exceptions import RequirementError
from .module import Module
from .relation import Relation
from .standalone import (
    minimal_safe_cardinality_pairs,
    minimal_safe_hidden_subsets,
    pareto_minimal_pairs,
)
from .workflow import Workflow

__all__ = [
    "SetRequirement",
    "CardinalityRequirement",
    "SetRequirementList",
    "CardinalityRequirementList",
    "RequirementList",
    "derive_set_requirements",
    "derive_cardinality_requirements",
    "derive_module_requirement",
    "derive_workflow_requirements",
]


@dataclass(frozen=True)
class SetRequirement:
    """One option ``(I_i^j, O_i^j)``: hide these inputs and these outputs."""

    hidden_inputs: frozenset[str]
    hidden_outputs: frozenset[str]

    @property
    def attributes(self) -> frozenset[str]:
        return self.hidden_inputs | self.hidden_outputs

    def satisfied_by(self, hidden: Iterable[str]) -> bool:
        """Does the candidate hidden set cover this option?"""
        hidden_set = set(hidden)
        return self.attributes <= hidden_set

    def cost(self, costs: Mapping[str, float]) -> float:
        return sum(costs[name] for name in self.attributes)

    def dominates(self, other: "SetRequirement") -> bool:
        """A requirement dominates another if it asks for a subset of it."""
        return self.attributes <= other.attributes


@dataclass(frozen=True)
class CardinalityRequirement:
    """One option ``(α, β)``: hide at least α inputs and β outputs."""

    alpha: int
    beta: int

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise RequirementError("cardinality requirements must be non-negative")

    def satisfied_by(self, hidden: Iterable[str], module: Module) -> bool:
        hidden_set = set(hidden)
        hidden_inputs = hidden_set & set(module.input_names)
        hidden_outputs = hidden_set & set(module.output_names)
        return len(hidden_inputs) >= self.alpha and len(hidden_outputs) >= self.beta

    def dominates(self, other: "CardinalityRequirement") -> bool:
        return self.alpha <= other.alpha and self.beta <= other.beta


class SetRequirementList:
    """The set-constraint requirement list ``L_i`` of one module."""

    def __init__(self, module_name: str, options: Iterable[SetRequirement]) -> None:
        self.module_name = module_name
        self.options: tuple[SetRequirement, ...] = tuple(options)
        if not self.options:
            raise RequirementError(
                f"module {module_name!r} has an empty requirement list"
            )

    def __len__(self) -> int:
        return len(self.options)

    def __iter__(self):
        return iter(self.options)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SetRequirementList({self.module_name!r}, {len(self.options)} options)"

    def satisfied_by(self, hidden: Iterable[str]) -> bool:
        """Is some option fully hidden by the candidate hidden set?"""
        hidden_set = set(hidden)
        return any(option.satisfied_by(hidden_set) for option in self.options)

    def cheapest_option(self, costs: Mapping[str, float]) -> SetRequirement:
        """The minimum-cost option (used by the greedy algorithm of Thm. 7)."""
        return min(self.options, key=lambda option: option.cost(costs))

    def normalized(self) -> "SetRequirementList":
        """Remove options dominated by (i.e. supersets of) other options."""
        kept: list[SetRequirement] = []
        for option in sorted(
            self.options, key=lambda o: (len(o.attributes), sorted(o.attributes))
        ):
            if not any(existing.dominates(option) for existing in kept):
                kept.append(option)
        return SetRequirementList(self.module_name, kept)

    def validate_against(self, module: Module) -> None:
        """Check that every option only references the module's attributes."""
        inputs = set(module.input_names)
        outputs = set(module.output_names)
        for option in self.options:
            if not option.hidden_inputs <= inputs:
                raise RequirementError(
                    f"{self.module_name!r}: {sorted(option.hidden_inputs)} not all inputs"
                )
            if not option.hidden_outputs <= outputs:
                raise RequirementError(
                    f"{self.module_name!r}: {sorted(option.hidden_outputs)} not all outputs"
                )

    @property
    def max_option_size(self) -> int:
        return max(len(option.attributes) for option in self.options)


class CardinalityRequirementList:
    """The cardinality-constraint requirement list ``L_i`` of one module."""

    def __init__(
        self, module_name: str, options: Iterable[CardinalityRequirement]
    ) -> None:
        self.module_name = module_name
        self.options: tuple[CardinalityRequirement, ...] = tuple(options)
        if not self.options:
            raise RequirementError(
                f"module {module_name!r} has an empty requirement list"
            )

    def __len__(self) -> int:
        return len(self.options)

    def __iter__(self):
        return iter(self.options)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = [(o.alpha, o.beta) for o in self.options]
        return f"CardinalityRequirementList({self.module_name!r}, {pairs})"

    def satisfied_by(self, hidden: Iterable[str], module: Module) -> bool:
        hidden_set = set(hidden)
        return any(option.satisfied_by(hidden_set, module) for option in self.options)

    def normalized(self) -> "CardinalityRequirementList":
        """Keep only the Pareto frontier of (α, β) pairs."""
        kept: list[CardinalityRequirement] = []
        for option in sorted(self.options, key=lambda o: (o.alpha, o.beta)):
            if not any(existing.dominates(option) for existing in kept):
                kept.append(option)
        return CardinalityRequirementList(self.module_name, kept)

    def validate_against(self, module: Module) -> None:
        for option in self.options:
            if option.alpha > len(module.input_names):
                raise RequirementError(
                    f"{self.module_name!r}: α={option.alpha} exceeds |I|"
                )
            if option.beta > len(module.output_names):
                raise RequirementError(
                    f"{self.module_name!r}: β={option.beta} exceeds |O|"
                )

    def to_set_requirements(self, module: Module) -> SetRequirementList:
        """Expand into explicit set constraints (may be exponentially larger).

        This is the expressiveness relation discussed around Example 6: every
        cardinality list can be expressed as a set list by enumerating all
        attribute choices of the required sizes.
        """
        import itertools

        options = []
        for requirement in self.options:
            for ins in itertools.combinations(module.input_names, requirement.alpha):
                for outs in itertools.combinations(
                    module.output_names, requirement.beta
                ):
                    options.append(
                        SetRequirement(frozenset(ins), frozenset(outs))
                    )
        return SetRequirementList(self.module_name, options).normalized()


#: Either kind of requirement list.
RequirementList = SetRequirementList | CardinalityRequirementList


def derive_set_requirements(
    module: Module,
    gamma: int,
    relation: Relation | None = None,
    backend: str | None = None,
    compiled=None,
) -> SetRequirementList:
    """Derive a module's set-constraint list from standalone privacy analysis.

    The options are the inclusion-minimal safe hidden subsets of the module
    (Section 3.2's exhaustive enumeration), split into their input and output
    parts.  Theorem 4 guarantees these standalone options remain sufficient
    inside an all-private workflow.

    ``compiled`` accepts an already-compiled
    :class:`~repro.kernel.module_kernel.CompiledModule` (e.g. one served
    from the derivation store's module tier, warm privacy-level memos
    included); when given, the sweep runs on it directly and ``relation`` /
    ``backend`` are ignored.
    """
    if compiled is not None:
        minimal = compiled.minimal_safe_hidden_subsets(gamma)
    else:
        minimal = minimal_safe_hidden_subsets(
            module, gamma, relation=relation, backend=backend
        )
    inputs = set(module.input_names)
    outputs = set(module.output_names)
    options = [
        SetRequirement(frozenset(h & inputs), frozenset(h & outputs))
        for h in minimal
    ]
    return SetRequirementList(module.name, options)


def derive_cardinality_requirements(
    module: Module,
    gamma: int,
    relation: Relation | None = None,
    backend: str | None = None,
    compiled=None,
) -> CardinalityRequirementList:
    """Derive a module's cardinality-constraint list (Pareto-minimal pairs).

    ``compiled`` works as in :func:`derive_set_requirements`.
    """
    if compiled is not None:
        pairs = pareto_minimal_pairs(compiled.safe_cardinality_pairs(gamma))
    else:
        pairs = minimal_safe_cardinality_pairs(
            module, gamma, relation=relation, backend=backend
        )
    if not pairs:
        raise RequirementError(
            f"module {module.name!r} admits no cardinality-safe pair for Γ={gamma}"
        )
    options = [CardinalityRequirement(alpha, beta) for alpha, beta in pairs]
    return CardinalityRequirementList(module.name, options)


def derive_module_requirement(
    module: Module,
    gamma: int,
    kind: str = "set",
    relation: Relation | None = None,
    backend: str | None = None,
    compiled=None,
) -> RequirementList:
    """The requirement list of *one* module — the unit of derivation.

    Everything here is a pure function of the module's own content (its
    name, schemas and tabulated functionality) plus ``(Γ, kind)``: the
    paper's composition theorems turn standalone guarantees into workflow
    requirement lists module by module, which is what lets the engine key
    these artifacts by :func:`~repro.workloads.module_fingerprint` and share
    them across every workflow containing the module.
    """
    if kind == "set":
        return derive_set_requirements(
            module, gamma, relation=relation, backend=backend, compiled=compiled
        )
    if kind == "cardinality":
        return derive_cardinality_requirements(
            module, gamma, relation=relation, backend=backend, compiled=compiled
        )
    raise RequirementError(f"unknown requirement kind {kind!r}")


def derive_workflow_requirements(
    workflow: Workflow,
    gamma: int,
    kind: str = "set",
    modules: Sequence[str] | None = None,
    backend: str | None = None,
) -> dict[str, RequirementList]:
    """Requirement lists for every (private) module of a workflow.

    Parameters
    ----------
    workflow, gamma:
        The workflow and the uniform privacy requirement.
    kind:
        ``"set"`` or ``"cardinality"``.
    modules:
        Module names to derive lists for; defaults to the private modules
        (public modules need no protection).
    backend:
        ``"kernel"`` (default) derives on bit-packed relations;
        ``"reference"`` uses the brute-force Safe-View oracle.
    """
    if kind not in {"set", "cardinality"}:
        raise RequirementError(f"unknown requirement kind {kind!r}")
    targets = (
        [workflow.module(name) for name in modules]
        if modules is not None
        else list(workflow.private_modules)
    )
    # A workflow's requirement mapping is nothing but the per-module
    # derivations assembled in workflow module order — the property the
    # engine's module-granular cache tier relies on.
    return {
        module.name: derive_module_requirement(
            module, gamma, kind=kind, backend=backend
        )
        for module in targets
    }
