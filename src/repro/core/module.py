"""Workflow modules.

A module ``m`` (Section 2.1) takes a set ``I`` of input attributes, produces
a set ``O`` of output attributes, and is modeled as a relation over
``A = I ∪ O`` satisfying the functional dependency ``I -> O``.  Concretely a
:class:`Module` wraps a Python callable mapping an input assignment to an
output assignment, together with the two attribute schemas, a privacy class
(private or public), and a privatization cost used in Section 5.

The standalone relation of a module is obtained by enumerating its whole
input domain (``Dom = prod_a Delta_a``) and recording ``m(x)`` for every
``x``; this is the relation ``R`` of Definition 1 and the object the
standalone Secure-View machinery works on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from ..exceptions import SchemaError, WiringError
from .attributes import Attribute, Schema, Value
from .relation import Relation

__all__ = ["Module", "ModuleFunction", "tabulate_function"]


#: A module function maps an input assignment to an output assignment.
ModuleFunction = Callable[[Mapping[str, Value]], Mapping[str, Value]]


class Module:
    """A data-processing step with functionality ``m : Dom -> Range``.

    Parameters
    ----------
    name:
        Unique module name within a workflow.
    inputs, outputs:
        Input and output attributes.  Their name sets must be disjoint
        (requirement (1) of Section 2.3).
    function:
        Callable mapping a dict of input values to a dict of output values.
        The callable must be deterministic: the library relies on the
        functional dependency ``I -> O``.
    private:
        ``True`` for private (proprietary) modules whose behaviour must be
        protected, ``False`` for public modules whose behaviour is known to
        every user (Section 2.2).
    privatization_cost:
        Cost ``c(m)`` of hiding the identity of a *public* module
        (Section 5.2).  Ignored for private modules.
    """

    __slots__ = (
        "name",
        "_inputs",
        "_outputs",
        "_function",
        "private",
        "privatization_cost",
        "_relation_cache",
    )

    def __init__(
        self,
        name: str,
        inputs: Sequence[Attribute],
        outputs: Sequence[Attribute],
        function: ModuleFunction,
        private: bool = True,
        privatization_cost: float = 1.0,
    ) -> None:
        if not name:
            raise SchemaError("module name must be non-empty")
        input_schema = Schema(inputs)
        output_schema = Schema(outputs)
        overlap = set(input_schema.names) & set(output_schema.names)
        if overlap:
            raise WiringError(
                f"module {name!r}: input and output attribute names overlap: "
                f"{sorted(overlap)}"
            )
        if len(output_schema) == 0:
            raise WiringError(f"module {name!r} must have at least one output")
        if privatization_cost < 0:
            raise SchemaError(f"module {name!r} has negative privatization cost")
        self.name = name
        self._inputs = input_schema
        self._outputs = output_schema
        self._function = function
        self.private = bool(private)
        self.privatization_cost = float(privatization_cost)
        self._relation_cache: Relation | None = None

    # -- schema access --------------------------------------------------------
    @property
    def input_schema(self) -> Schema:
        return self._inputs

    @property
    def output_schema(self) -> Schema:
        return self._outputs

    @property
    def input_names(self) -> tuple[str, ...]:
        return self._inputs.names

    @property
    def output_names(self) -> tuple[str, ...]:
        return self._outputs.names

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """All attribute names ``I ∪ O`` in input-then-output order."""
        return self._inputs.names + self._outputs.names

    @property
    def schema(self) -> Schema:
        """Schema over ``I ∪ O``."""
        return self._inputs.union(self._outputs)

    @property
    def public(self) -> bool:
        return not self.private

    # -- evaluation -----------------------------------------------------------
    def apply(self, inputs: Mapping[str, Value]) -> dict[str, Value]:
        """Evaluate the module on one input assignment.

        The result is validated: it must assign a legal value to every output
        attribute and nothing else.
        """
        restricted = {name: inputs[name] for name in self._inputs.names}
        self._inputs.validate_assignment(restricted)
        raw = self._function(restricted)
        try:
            result = {name: raw[name] for name in self._outputs.names}
        except (KeyError, TypeError) as exc:
            raise SchemaError(
                f"module {self.name!r} did not produce output attribute "
                f"{exc.args[0]!r}"
            ) from exc
        self._outputs.validate_assignment(result)
        return result

    def __call__(self, inputs: Mapping[str, Value]) -> dict[str, Value]:
        return self.apply(inputs)

    # -- relation materialization ----------------------------------------------
    def relation(self) -> Relation:
        """The standalone relation ``R`` of the module (Definition 1).

        Enumerates the full input domain.  The result is cached because
        privacy checks and requirement derivation revisit it many times.
        """
        if self._relation_cache is None:
            rows = []
            for assignment in self._inputs.iter_assignments():
                out = self.apply(assignment)
                row = dict(assignment)
                row.update(out)
                rows.append(row)
            self._relation_cache = Relation(self.schema, rows, check_domains=False)
        return self._relation_cache

    def relation_for_inputs(self, inputs: Iterable[Mapping[str, Value]]) -> Relation:
        """Relation restricted to a given set of input assignments.

        Used when a module sits inside a workflow and only sees the inputs
        produced by its predecessors (the projection ``pi_{Ii∪Oi}(R)`` of
        Section 4 may be a strict subset of the standalone relation).
        """
        rows = []
        seen: set[tuple[Value, ...]] = set()
        for assignment in inputs:
            restricted = {name: assignment[name] for name in self._inputs.names}
            key = tuple(restricted[name] for name in self._inputs.names)
            if key in seen:
                continue
            seen.add(key)
            row = dict(restricted)
            row.update(self.apply(restricted))
            rows.append(row)
        return Relation(self.schema, rows, check_domains=False)

    # -- classification helpers -------------------------------------------------
    def domain_size(self) -> int:
        """``|Dom| = prod_{a in I} |Delta_a|``."""
        return self._inputs.assignment_count()

    def range_size(self) -> int:
        """``prod_{a in O} |Delta_a|`` (size of the output value space)."""
        return self._outputs.assignment_count()

    def is_one_to_one(self) -> bool:
        """True if distinct inputs always map to distinct outputs."""
        rel = self.relation()
        outputs = {
            tuple(row[name] for name in self._outputs.names) for row in rel
        }
        return len(outputs) == len(rel)

    def is_constant(self) -> bool:
        """True if every input maps to the same output tuple."""
        rel = self.relation()
        outputs = {
            tuple(row[name] for name in self._outputs.names) for row in rel
        }
        return len(outputs) <= 1

    def is_invertible(self) -> bool:
        """True if the module is a bijection between Dom and Range.

        This is the property exploited by the public module ``m''`` of
        Example 7: seeing the outputs of an invertible public module reveals
        its inputs exactly.
        """
        return self.is_one_to_one() and self.domain_size() == self.range_size()

    def image(self) -> set[tuple[Value, ...]]:
        """Set of output tuples the module can produce."""
        rel = self.relation()
        return {tuple(row[name] for name in self._outputs.names) for row in rel}

    # -- derivation of new modules -----------------------------------------------
    def renamed(self, name: str) -> "Module":
        """Copy of the module under a new name (same function and schemas)."""
        return Module(
            name,
            self._inputs.attributes,
            self._outputs.attributes,
            self._function,
            private=self.private,
            privatization_cost=self.privatization_cost,
        )

    def as_private(self) -> "Module":
        """Copy of the module marked private (used by privatization)."""
        clone = Module(
            self.name,
            self._inputs.attributes,
            self._outputs.attributes,
            self._function,
            private=True,
            privatization_cost=self.privatization_cost,
        )
        clone._relation_cache = self._relation_cache
        return clone

    def with_attribute_costs(self, costs: Mapping[str, float]) -> "Module":
        """Copy of the module with some attribute hiding costs overridden.

        Attributes absent from ``costs`` keep their declared cost.  Privacy
        is cost-independent, so the copy shares this module's relation cache
        (the engine's derivation cache relies on that when re-costing a
        workflow for a what-if solve).
        """
        clone = Module(
            self.name,
            [attr.with_cost(costs.get(attr.name, attr.cost)) for attr in self._inputs],
            [attr.with_cost(costs.get(attr.name, attr.cost)) for attr in self._outputs],
            self._function,
            private=self.private,
            privatization_cost=self.privatization_cost,
        )
        clone._relation_cache = self._relation_cache
        return clone

    def with_function(self, function: ModuleFunction) -> "Module":
        """Copy of the module with a different functionality.

        This is the redefinition ``m_j -> g_j`` used in the constructive
        proof of Lemma 1 (see :mod:`repro.core.composition`).
        """
        return Module(
            self.name,
            self._inputs.attributes,
            self._outputs.attributes,
            function,
            private=self.private,
            privatization_cost=self.privatization_cost,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "private" if self.private else "public"
        return (
            f"Module({self.name!r}, I={list(self.input_names)}, "
            f"O={list(self.output_names)}, {kind})"
        )


def tabulate_function(module: Module) -> dict[tuple[Value, ...], tuple[Value, ...]]:
    """Return the module's function as an explicit input-tuple -> output-tuple map.

    Handy for tests and for constructing flipped/redefined modules: the keys
    are input tuples in ``module.input_names`` order and the values output
    tuples in ``module.output_names`` order.
    """
    table: dict[tuple[Value, ...], tuple[Value, ...]] = {}
    for row in module.relation():
        key = tuple(row[name] for name in module.input_names)
        value = tuple(row[name] for name in module.output_names)
        table[key] = value
    return table
