"""Cost models for hidden attributes and privatized public modules.

The paper uses an additive cost model: each attribute ``a`` has a penalty
``c(a)`` incurred when it is hidden, and (in Section 5) each public module
``m`` has a penalty ``c(m)`` incurred when it is privatized.  The helpers
here build and manipulate such cost assignments and compute solution costs.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from ..exceptions import SchemaError
from .workflow import Workflow

__all__ = [
    "uniform_attribute_costs",
    "random_attribute_costs",
    "solution_cost",
    "attribute_cost_map",
    "privatization_cost_map",
]


def uniform_attribute_costs(
    names: Iterable[str], cost: float = 1.0
) -> dict[str, float]:
    """Assign the same hiding cost to every attribute name."""
    if cost < 0:
        raise SchemaError("costs must be non-negative")
    return {name: float(cost) for name in names}


def random_attribute_costs(
    names: Iterable[str],
    low: float = 1.0,
    high: float = 10.0,
    rng: random.Random | None = None,
) -> dict[str, float]:
    """Assign independent uniform random costs in ``[low, high]``."""
    if low < 0 or high < low:
        raise SchemaError("need 0 <= low <= high")
    rng = rng or random.Random()
    return {name: rng.uniform(low, high) for name in names}


def attribute_cost_map(workflow: Workflow) -> dict[str, float]:
    """Extract the per-attribute hiding costs declared in a workflow schema."""
    return {attr.name: attr.cost for attr in workflow.schema}


def privatization_cost_map(workflow: Workflow) -> dict[str, float]:
    """Extract the per-public-module privatization costs of a workflow."""
    return {
        module.name: module.privatization_cost
        for module in workflow.public_modules
    }


def solution_cost(
    workflow: Workflow,
    hidden_attributes: Iterable[str],
    privatized_modules: Iterable[str] = (),
    attribute_costs: Mapping[str, float] | None = None,
    module_costs: Mapping[str, float] | None = None,
) -> float:
    """Total cost ``c(V̄) + c(P̄)`` of a secure-view solution.

    Costs default to those declared on the workflow's attributes and modules
    but can be overridden, which the optimization benchmarks use to sweep
    cost distributions without rebuilding workflows.
    """
    attr_costs = (
        attribute_cost_map(workflow) if attribute_costs is None else attribute_costs
    )
    mod_costs = (
        privatization_cost_map(workflow) if module_costs is None else module_costs
    )
    total = 0.0
    for name in set(hidden_attributes):
        try:
            total += attr_costs[name]
        except KeyError as exc:
            raise SchemaError(f"no cost for attribute {name!r}") from exc
    for name in set(privatized_modules):
        module = workflow.module(name)
        if module.private:
            continue
        total += mod_costs.get(name, module.privatization_cost)
    return total
