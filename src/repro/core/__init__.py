"""Core model: attributes, relations, modules, workflows, views and privacy.

This subpackage implements the formal model of Sections 2–4 of the paper:
finite-domain attributes, module relations with the functional dependency
``I -> O``, workflow DAGs and their provenance relations, provenance views,
Γ-privacy (standalone and workflow), the standalone Secure-View machinery,
requirement lists, the composition theorems, and the workflow Secure-View
problem definition.
"""

from .attributes import (
    BOOLEAN,
    Attribute,
    Domain,
    Schema,
    boolean_attributes,
    integer_domain,
)
from .composition import (
    assemble_all_private_solution,
    assemble_general_solution,
    build_flipped_world,
    flip_assignment,
    flip_module,
    lemma2_witness,
    privatization_closure,
)
from .attack import (
    AttackReport,
    InputExposure,
    candidate_outputs,
    reconstruction_attack,
)
from .costs import (
    attribute_cost_map,
    privatization_cost_map,
    random_attribute_costs,
    solution_cost,
    uniform_attribute_costs,
)
from .module import Module, tabulate_function
from .possible_worlds import (
    count_standalone_worlds,
    enumerate_standalone_worlds,
    enumerate_workflow_worlds,
    is_standalone_world,
    is_workflow_world,
    workflow_out_set,
    workflow_out_sets,
)
from .privacy import (
    hidden_output_completions,
    is_gamma_private_workflow,
    is_standalone_private,
    is_workflow_private,
    standalone_out_counts,
    standalone_out_set,
    standalone_privacy_level,
    workflow_privacy_level,
)
from .queries import (
    attribute_dependency_graph,
    depends_on,
    downstream_attributes,
    execution_lineage,
    module_lineage,
    producing_path,
    upstream_attributes,
    view_dependency_pairs,
    visible_upstream,
)
from .relation import Relation
from .requirements import (
    CardinalityRequirement,
    CardinalityRequirementList,
    SetRequirement,
    SetRequirementList,
    derive_cardinality_requirements,
    derive_module_requirement,
    derive_set_requirements,
    derive_workflow_requirements,
)
from .secure_view import SecureViewProblem
from .standalone import (
    SafeViewOracle,
    StandaloneSolution,
    enumerate_safe_hidden_subsets,
    minimal_safe_cardinality_pairs,
    minimal_safe_hidden_subsets,
    minimum_cost_safe_subset,
    safe_cardinality_pairs,
)
from .view import ProvenanceView, SecureViewSolution
from .workflow import Workflow

__all__ = [
    # attributes
    "Attribute",
    "Domain",
    "Schema",
    "BOOLEAN",
    "boolean_attributes",
    "integer_domain",
    # relations & modules & workflows
    "Relation",
    "Module",
    "tabulate_function",
    "Workflow",
    # views & costs
    "ProvenanceView",
    "SecureViewSolution",
    "uniform_attribute_costs",
    "random_attribute_costs",
    "solution_cost",
    "attribute_cost_map",
    "privatization_cost_map",
    # possible worlds
    "count_standalone_worlds",
    "enumerate_standalone_worlds",
    "is_standalone_world",
    "enumerate_workflow_worlds",
    "is_workflow_world",
    "workflow_out_set",
    "workflow_out_sets",
    # privacy
    "hidden_output_completions",
    "standalone_out_counts",
    "standalone_out_set",
    "standalone_privacy_level",
    "is_standalone_private",
    "workflow_privacy_level",
    "is_workflow_private",
    "is_gamma_private_workflow",
    # standalone secure-view
    "SafeViewOracle",
    "StandaloneSolution",
    "minimum_cost_safe_subset",
    "enumerate_safe_hidden_subsets",
    "minimal_safe_hidden_subsets",
    "safe_cardinality_pairs",
    "minimal_safe_cardinality_pairs",
    # requirements
    "SetRequirement",
    "SetRequirementList",
    "CardinalityRequirement",
    "CardinalityRequirementList",
    "derive_set_requirements",
    "derive_cardinality_requirements",
    "derive_module_requirement",
    "derive_workflow_requirements",
    # composition
    "flip_assignment",
    "flip_module",
    "lemma2_witness",
    "build_flipped_world",
    "assemble_all_private_solution",
    "assemble_general_solution",
    "privatization_closure",
    # problem
    "SecureViewProblem",
    # attack simulation
    "AttackReport",
    "InputExposure",
    "candidate_outputs",
    "reconstruction_attack",
    # provenance queries
    "attribute_dependency_graph",
    "upstream_attributes",
    "downstream_attributes",
    "depends_on",
    "producing_path",
    "module_lineage",
    "execution_lineage",
    "visible_upstream",
    "view_dependency_pairs",
]
