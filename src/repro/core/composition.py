"""Composing workflow privacy out of standalone guarantees (Theorems 4 & 8).

The central positive results of the paper state that standalone safe subsets
compose:

* **Theorem 4** (all-private workflows): if ``V̄_i`` makes module ``m_i``
  Γ-standalone-private, then hiding ``∪_i V̄_i`` makes every module
  Γ-workflow-private.
* **Theorem 8** (general workflows): the same holds when, additionally, the
  only public modules left *visible* are those all of whose input and output
  attributes remain visible; the others must be privatized.

The proofs are constructive and rest on the *flipping* machinery of Lemma 1:
given a module ``m_i``, an input ``x`` and a candidate output ``y`` obtained
from Lemma 2, every module ``m_j`` is redefined to ``g_j = FLIP_{m_j,p,q}``
and the executions of the redefined workflow form a possible world in which
``m_i`` maps ``x`` to ``y``.  This module implements the flip operators, the
constructive world builder (used by tests to cross-validate the brute-force
possible-worlds enumeration), and the two assembly procedures.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..exceptions import PrivacyError
from .attributes import Value
from .module import Module
from .relation import Relation
from .standalone import minimum_cost_safe_subset
from .view import SecureViewSolution
from .workflow import Workflow

__all__ = [
    "flip_assignment",
    "flip_module",
    "lemma2_witness",
    "build_flipped_world",
    "assemble_all_private_solution",
    "assemble_general_solution",
    "privatization_closure",
]


# ---------------------------------------------------------------------------
# Flipping (Definition 7 and the FLIP operator of Appendix B.3)
# ---------------------------------------------------------------------------

def flip_assignment(
    x: Mapping[str, Value],
    p: Mapping[str, Value],
    q: Mapping[str, Value],
) -> dict[str, Value]:
    """``FLIP_{p,q}(x)``: swap the values of ``p`` and ``q`` inside ``x``.

    For every attribute ``a`` that both ``x`` and ``p``/``q`` define: if
    ``x[a] == p[a]`` the value becomes ``q[a]``; if ``x[a] == q[a]`` it
    becomes ``p[a]``; otherwise (and for attributes outside ``p``/``q``) the
    value is unchanged.  ``FLIP`` is an involution.
    """
    flipped = dict(x)
    for name in x:
        if name in p and name in q:
            if x[name] == p[name]:
                flipped[name] = q[name]
            elif x[name] == q[name]:
                flipped[name] = p[name]
    return flipped


def flip_module(
    module: Module,
    p: Mapping[str, Value],
    q: Mapping[str, Value],
) -> Module:
    """``g = FLIP_{m,p,q}``: flip the input, apply ``m``, flip the output.

    This is Definition 7; the redefined module has the same schemas as ``m``
    and is used to build possible worlds constructively.
    """

    def flipped_function(inputs: Mapping[str, Value]) -> Mapping[str, Value]:
        flipped_in = flip_assignment(dict(inputs), p, q)
        raw_out = module.apply(flipped_in)
        return flip_assignment(raw_out, p, q)

    return module.with_function(flipped_function)


def lemma2_witness(
    module: Module,
    x: Mapping[str, Value],
    y: Mapping[str, Value],
    visible: Iterable[str],
    relation: Relation | None = None,
) -> tuple[dict[str, Value], dict[str, Value]]:
    """The witness ``(x', y' = m(x'))`` of Lemma 2 for candidate output ``y``.

    ``y`` must belong to ``OUT_{x,m}`` w.r.t. the visible attributes; the
    returned execution agrees with ``x`` on the visible inputs and with ``y``
    on the visible outputs.  Raises :class:`PrivacyError` if ``y`` is not a
    candidate output (i.e. no such witness exists).
    """
    rel = relation if relation is not None else module.relation()
    visible_set = set(visible)
    vin = [name for name in module.input_names if name in visible_set]
    vout = [name for name in module.output_names if name in visible_set]
    for row in rel:
        if all(row[name] == x[name] for name in vin) and all(
            row[name] == y[name] for name in vout
        ):
            x_prime = {name: row[name] for name in module.input_names}
            y_prime = {name: row[name] for name in module.output_names}
            return x_prime, y_prime
    raise PrivacyError(
        f"{dict(y)!r} is not a candidate output of {dict(x)!r} for module "
        f"{module.name!r} under the given visible attributes"
    )


def build_flipped_world(
    workflow: Workflow,
    module_name: str,
    x: Mapping[str, Value],
    y: Mapping[str, Value],
    visible: Iterable[str],
) -> Relation:
    """Constructive possible world in which module ``m_i`` maps ``x`` to ``y``.

    Implements the proof of Lemma 1: build ``p`` from ``(x, y)`` and ``q``
    from the Lemma-2 witness ``(x', y')``, redefine every module ``m_j`` to
    ``g_j = FLIP_{m_j,p,q}`` and collect the executions of the redefined
    workflow over all initial inputs.  The caller is responsible for ensuring
    the workflow is all-private (or that the affected public modules are
    privatized) — otherwise the returned relation may not be a legal world
    under Definition 6, which is exactly the failure mode Example 7 exhibits
    and the tests probe.
    """
    module = workflow.module(module_name)
    visible_vi = set(visible) & set(module.attribute_names)
    x_prime, y_prime = lemma2_witness(module, x, y, visible_vi)

    p: dict[str, Value] = {name: x[name] for name in module.input_names}
    p.update({name: y[name] for name in module.output_names})
    q: dict[str, Value] = dict(x_prime)
    q.update(y_prime)

    replacements = {
        m.name: flip_module(m, p, q) for m in workflow.modules
    }
    flipped = workflow.with_modules_replaced(replacements)
    return Relation(
        workflow.schema,
        [row for row in flipped.provenance_relation()],
        check_domains=False,
    )


# ---------------------------------------------------------------------------
# Theorem 4 / Theorem 8 assembly
# ---------------------------------------------------------------------------

def assemble_all_private_solution(
    workflow: Workflow,
    gamma: int,
    hidden_per_module: Mapping[str, Iterable[str]] | None = None,
) -> SecureViewSolution:
    """Theorem 4: union of standalone safe hidden sets for all-private workflows.

    ``hidden_per_module`` optionally supplies, for each module, a hidden set
    that makes it Γ-standalone-private (e.g. one chosen by an optimizer);
    when omitted, each module's minimum-cost standalone solution is used.
    The returned solution hides the union of the per-module hidden sets.
    """
    if not workflow.is_all_private:
        raise PrivacyError(
            "assemble_all_private_solution requires an all-private workflow; "
            "use assemble_general_solution instead"
        )
    hidden: set[str] = set()
    per_module_meta: dict[str, list[str]] = {}
    for module in workflow.modules:
        if hidden_per_module is not None and module.name in hidden_per_module:
            module_hidden = set(hidden_per_module[module.name])
        else:
            module_hidden = set(
                minimum_cost_safe_subset(module, gamma).hidden_attributes
            )
        per_module_meta[module.name] = sorted(module_hidden)
        hidden |= module_hidden
    return SecureViewSolution(
        workflow,
        frozenset(hidden),
        frozenset(),
        meta={"gamma": gamma, "per_module_hidden": per_module_meta},
    )


def privatization_closure(
    workflow: Workflow, hidden_attributes: Iterable[str]
) -> frozenset[str]:
    """Public modules that must be privatized given a hidden attribute set.

    Theorem 8 keeps a public module visible only if *all* of its input and
    output attributes remain visible; any public module adjacent to a hidden
    attribute goes into ``P̄``.
    """
    hidden = set(hidden_attributes)
    privatized = {
        module.name
        for module in workflow.public_modules
        if hidden & set(module.attribute_names)
    }
    return frozenset(privatized)


def assemble_general_solution(
    workflow: Workflow,
    gamma: int,
    hidden_per_module: Mapping[str, Iterable[str]] | None = None,
) -> SecureViewSolution:
    """Theorem 8: standalone assembly for workflows with public modules.

    Hidden attributes are the union of the private modules' standalone safe
    hidden sets; every public module touching a hidden attribute is
    privatized so that condition (2) of Definition 6 stops constraining the
    possible worlds around the private modules.
    """
    hidden: set[str] = set()
    per_module_meta: dict[str, list[str]] = {}
    for module in workflow.private_modules:
        if hidden_per_module is not None and module.name in hidden_per_module:
            module_hidden = set(hidden_per_module[module.name])
        else:
            module_hidden = set(
                minimum_cost_safe_subset(module, gamma).hidden_attributes
            )
        per_module_meta[module.name] = sorted(module_hidden)
        hidden |= module_hidden
    privatized = privatization_closure(workflow, hidden)
    return SecureViewSolution(
        workflow,
        frozenset(hidden),
        privatized,
        meta={"gamma": gamma, "per_module_hidden": per_module_meta},
    )
