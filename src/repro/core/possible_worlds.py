"""Possible-worlds semantics for provenance views.

The privacy definitions of the paper (Definitions 1, 4 and 6) are phrased in
terms of *possible worlds*: the relations an adversary cannot distinguish
from the true one after seeing only the visible attributes.  This module
provides exact, brute-force enumerators for small instances.  They are the
ground truth against which the fast counting-based privacy checks in
:mod:`repro.core.privacy` and the constructive flipping argument in
:mod:`repro.core.composition` are validated.

Two semantics are implemented:

* **standalone worlds** (Definition 1) for a single module, optionally
  restricted to worlds that are total functions on the module's domain
  (this is the convention under which Example 2 counts 64 worlds for
  ``m_1``), and
* **workflow worlds** (Definitions 4/6), enumerated as "one completion of
  the hidden attributes per visible tuple".  Restricting to one completion
  per visible tuple loses no generality for privacy: any witness tuple in
  any world survives in such a sub-world, so the OUT_x sets — and hence
  Γ-privacy — are unchanged.

Both enumerators are exponential by nature (the paper proves they have to
be); they guard against accidental blow-ups with explicit work limits.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Iterator, Mapping, Sequence

from ..exceptions import PrivacyError
from .attributes import Value
from .module import Module
from .relation import Relation
from .workflow import Workflow

__all__ = [
    "count_standalone_worlds",
    "enumerate_standalone_worlds",
    "is_standalone_world",
    "enumerate_workflow_worlds",
    "is_workflow_world",
    "workflow_out_set",
    "workflow_out_sets",
]

#: Default cap on the number of candidate worlds examined by brute force.
DEFAULT_WORK_LIMIT = 2_000_000


# ---------------------------------------------------------------------------
# Standalone worlds (Definition 1)
# ---------------------------------------------------------------------------

def _visible_parts(
    module: Module, visible: Iterable[str]
) -> tuple[list[str], list[str], list[str], list[str]]:
    vis = set(visible)
    vin = [name for name in module.input_names if name in vis]
    vout = [name for name in module.output_names if name in vis]
    hin = [name for name in module.input_names if name not in vis]
    hout = [name for name in module.output_names if name not in vis]
    return vin, vout, hin, hout


def count_standalone_worlds(module: Module, visible: Iterable[str]) -> int:
    """Number of total-function worlds in ``Worlds(R, V)`` for a module.

    A total-function world assigns an output tuple to *every* input in the
    module's domain such that the projection of its graph on ``V`` equals
    ``pi_V(R)``.  The count is computed group by visible-input value with an
    inclusion–exclusion over the visible output values that must be covered,
    so no worlds are materialized (Proposition 2 needs counts that are far
    too large to enumerate).
    """
    relation = module.relation()
    vin, vout, _hin, hout = _visible_parts(module, visible)
    hidden_out_size = 1
    for name in hout:
        hidden_out_size *= module.output_schema[name].domain.size

    # Group the module's domain by visible-input value.
    groups: dict[tuple[Value, ...], list[dict[str, Value]]] = {}
    for row in relation:
        key = tuple(row[name] for name in vin)
        groups.setdefault(key, []).append(row)

    total = 1
    for key, rows in groups.items():
        group_size = len(rows)
        visible_outputs = {tuple(row[name] for name in vout) for row in rows}
        s = len(visible_outputs)
        # Number of ways to assign each of the `group_size` inputs an output
        # whose visible part lies in the allowed set (each visible part has
        # `hidden_out_size` completions), covering every allowed visible part.
        ways = 0
        for j in range(s + 1):
            ways += (
                (-1) ** j
                * math.comb(s, j)
                * ((s - j) * hidden_out_size) ** group_size
            )
        total *= ways
    return total


def enumerate_standalone_worlds(
    module: Module,
    visible: Iterable[str],
    max_worlds: int | None = None,
    work_limit: int = DEFAULT_WORK_LIMIT,
) -> Iterator[Relation]:
    """Yield the total-function worlds ``Worlds(R, V)`` of a standalone module.

    Worlds are yielded as relations over the module schema with exactly one
    row per input assignment in the module's domain.  ``max_worlds`` limits
    how many worlds are yielded; ``work_limit`` bounds the number of
    candidate assignments considered and raises :class:`PrivacyError` when
    exceeded (enumerating worlds is inherently exponential — see Theorem 3).
    """
    relation = module.relation()
    vin, vout, _hin, hout = _visible_parts(module, visible)
    schema = module.schema

    groups: dict[tuple[Value, ...], list[dict[str, Value]]] = {}
    for row in relation:
        key = tuple(row[name] for name in vin)
        groups.setdefault(key, []).append(row)

    hidden_out_assignments = list(module.output_schema.iter_assignments(hout))

    # For each group independently, enumerate assignments of full outputs to
    # the group's inputs that cover all required visible output values.
    def group_assignments(rows: list[dict[str, Value]]) -> list[list[dict[str, Value]]]:
        required = {tuple(row[name] for name in vout) for row in rows}
        choices: list[list[dict[str, Value]]] = []
        per_input_options: list[list[dict[str, Value]]] = []
        for row in rows:
            options = []
            for vis_out in required:
                for hidden in hidden_out_assignments:
                    out = dict(zip(vout, vis_out))
                    out.update(hidden)
                    full = {name: row[name] for name in module.input_names}
                    full.update(out)
                    options.append(full)
            per_input_options.append(options)
        for combo in itertools.product(*per_input_options):
            covered = {tuple(r[name] for name in vout) for r in combo}
            if covered == required:
                choices.append(list(combo))
        return choices

    per_group_choices = []
    work = 1
    for key, rows in groups.items():
        choices = group_assignments(rows)
        per_group_choices.append(choices)
        work *= max(len(choices), 1)
        if work > work_limit:
            raise PrivacyError(
                f"standalone world enumeration exceeds work limit ({work} > "
                f"{work_limit}); use count_standalone_worlds instead"
            )

    produced = 0
    for combo in itertools.product(*per_group_choices):
        rows = [row for group in combo for row in group]
        yield Relation(schema, rows, check_domains=False)
        produced += 1
        if max_worlds is not None and produced >= max_worlds:
            return


def is_standalone_world(
    candidate: Relation, module: Module, visible: Iterable[str]
) -> bool:
    """Check membership of ``candidate`` in ``Worlds(R, V)`` (Definition 1).

    The candidate must be over the module's schema, satisfy the functional
    dependency ``I -> O`` and have the same projection on ``V`` as the
    module's relation.
    """
    if set(candidate.schema.names) != set(module.schema.names):
        return False
    if not candidate.satisfies_fd(module.input_names, module.output_names):
        return False
    visible_list = [name for name in module.schema.names if name in set(visible)]
    return candidate.project(visible_list) == module.relation().project(visible_list)


# ---------------------------------------------------------------------------
# Workflow worlds (Definitions 4 and 6)
# ---------------------------------------------------------------------------

def _world_constraints_ok(
    rows: Sequence[dict[str, Value]],
    workflow: Workflow,
    respected_public: Sequence[Module],
) -> bool:
    """Check FDs of all modules and functionality of visible public modules."""
    for module in workflow.modules:
        seen: dict[tuple[Value, ...], tuple[Value, ...]] = {}
        for row in rows:
            key = tuple(row[name] for name in module.input_names)
            val = tuple(row[name] for name in module.output_names)
            if seen.setdefault(key, val) != val:
                return False
    for module in respected_public:
        for row in rows:
            expected = module.apply(row)
            if any(row[name] != value for name, value in expected.items()):
                return False
    return True


def enumerate_workflow_worlds(
    workflow: Workflow,
    visible: Iterable[str],
    hidden_public_modules: Iterable[str] = (),
    relation: Relation | None = None,
    max_worlds: int | None = None,
    work_limit: int = DEFAULT_WORK_LIMIT,
) -> Iterator[Relation]:
    """Yield worlds of the workflow relation w.r.t. ``V`` (Definitions 4/6).

    Worlds are represented with exactly one row per distinct visible tuple of
    ``pi_V(R)``; as argued in the module docstring this preserves the OUT_x
    sets and therefore Γ-privacy.  Public modules whose name is *not* in
    ``hidden_public_modules`` must behave according to their known
    functionality in every world (condition (2) of Definition 6).
    """
    visible_set = set(visible)
    schema = workflow.schema
    hidden = [name for name in schema.names if name not in visible_set]
    visible_list = [name for name in schema.names if name in visible_set]
    base = relation if relation is not None else workflow.provenance_relation()
    view = base.project(visible_list)

    hidden_assignments = list(schema.iter_assignments(hidden))
    respected_public = [
        module
        for module in workflow.public_modules
        if module.name not in set(hidden_public_modules)
    ]

    # Pre-compute, for each visible tuple, the candidate full rows.
    candidates_per_tuple: list[list[dict[str, Value]]] = []
    work = 1
    for vis_row in view:
        candidates = []
        for hidden_assignment in hidden_assignments:
            row = dict(vis_row)
            row.update(hidden_assignment)
            candidates.append(row)
        candidates_per_tuple.append(candidates)
        work *= max(len(candidates), 1)
        if work > work_limit:
            raise PrivacyError(
                f"workflow world enumeration exceeds work limit ({work} > "
                f"{work_limit}); reduce the instance or raise work_limit"
            )

    produced = 0
    for combo in itertools.product(*candidates_per_tuple):
        rows = list(combo)
        if not _world_constraints_ok(rows, workflow, respected_public):
            continue
        yield Relation(schema, rows, check_domains=False)
        produced += 1
        if max_worlds is not None and produced >= max_worlds:
            return


def is_workflow_world(
    candidate: Relation,
    workflow: Workflow,
    visible: Iterable[str],
    hidden_public_modules: Iterable[str] = (),
    relation: Relation | None = None,
) -> bool:
    """Check membership of ``candidate`` in ``Worlds(R, V, P)`` (Definition 6)."""
    schema = workflow.schema
    if set(candidate.schema.names) != set(schema.names):
        return False
    visible_set = set(visible)
    visible_list = [name for name in schema.names if name in visible_set]
    base = relation if relation is not None else workflow.provenance_relation()
    if candidate.project(visible_list) != base.project(visible_list):
        return False
    respected_public = [
        module
        for module in workflow.public_modules
        if module.name not in set(hidden_public_modules)
    ]
    rows = list(candidate)
    return _world_constraints_ok(rows, workflow, respected_public)


def workflow_out_sets(
    workflow: Workflow,
    module_name: str,
    visible: Iterable[str],
    hidden_public_modules: Iterable[str] = (),
    relation: Relation | None = None,
    stop_at: int | None = None,
    work_limit: int = DEFAULT_WORK_LIMIT,
    backend: str | None = None,
) -> dict[tuple[Value, ...], set[tuple[Value, ...]]]:
    """``OUT_{x,W}`` (Definition 5/6) for every input ``x ∈ pi_{I_i}(R)``.

    Definition 5 is universally quantified over the tuples of a world: ``y``
    is a candidate output for ``x`` if some world maps ``x`` *only* to ``y``
    — which is vacuously true for worlds in which ``x`` does not occur at
    all.  Concretely, per world: if ``x`` occurs, the world contributes the
    single output it assigns to ``x`` (single by the FD ``I_i -> O_i``);
    if ``x`` does not occur, the world contributes *every* output tuple in
    the module's range.

    All inputs are processed in one pass over the worlds.  ``stop_at``
    terminates early once every input has at least that many candidate
    outputs (pass ``stop_at = Γ`` for a yes/no privacy check).

    With ``backend="kernel"`` (the default) the same enumeration runs on
    bit-packed rows with incremental constraint pruning (see
    :class:`repro.kernel.CompiledWorkflow`); ``backend="reference"`` keeps
    this module's brute-force world enumeration as the validation oracle.
    """
    from ..kernel import compile_workflow, resolve_backend

    if resolve_backend(backend) == "kernel":
        return compile_workflow(workflow, relation).module_out_sets(
            module_name,
            visible,
            hidden_public_modules=hidden_public_modules,
            stop_at=stop_at,
            work_limit=work_limit,
        )
    module = workflow.module(module_name)
    base = relation if relation is not None else workflow.provenance_relation()
    input_keys = {
        tuple(row[name] for name in module.input_names)
        for row in base.project(module.input_names)
    }
    all_outputs = {
        tuple(assignment[name] for name in module.output_names)
        for assignment in module.output_schema.iter_assignments()
    }
    outputs: dict[tuple[Value, ...], set[tuple[Value, ...]]] = {
        key: set() for key in input_keys
    }

    def saturated() -> bool:
        if stop_at is None:
            return all(len(out) >= len(all_outputs) for out in outputs.values())
        return all(len(out) >= stop_at for out in outputs.values())

    for world in enumerate_workflow_worlds(
        workflow,
        visible,
        hidden_public_modules=hidden_public_modules,
        relation=base,
        work_limit=work_limit,
    ):
        per_input: dict[tuple[Value, ...], tuple[Value, ...]] = {}
        for row in world:
            row_key = tuple(row[name] for name in module.input_names)
            if row_key in outputs:
                per_input[row_key] = tuple(
                    row[name] for name in module.output_names
                )
        for key in input_keys:
            if key in per_input:
                outputs[key].add(per_input[key])
            else:
                # The world never exercises this input, so it is consistent
                # with any output value (the vacuous case of Definition 5).
                outputs[key] |= all_outputs
        if saturated():
            break
    return outputs


def workflow_out_set(
    workflow: Workflow,
    module_name: str,
    x: Mapping[str, Value],
    visible: Iterable[str],
    hidden_public_modules: Iterable[str] = (),
    relation: Relation | None = None,
    stop_at: int | None = None,
    work_limit: int = DEFAULT_WORK_LIMIT,
    backend: str | None = None,
) -> set[tuple[Value, ...]]:
    """``OUT_{x,W}`` of Definition 5/6 for one input ``x`` of a module.

    Convenience wrapper around :func:`workflow_out_sets`; see there for the
    exact semantics (including the vacuous-world case).
    """
    module = workflow.module(module_name)
    key = tuple(x[name] for name in module.input_names)
    sets = workflow_out_sets(
        workflow,
        module_name,
        visible,
        hidden_public_modules=hidden_public_modules,
        relation=relation,
        stop_at=None if stop_at is None else stop_at,
        work_limit=work_limit,
        backend=backend,
    )
    return sets.get(key, set())
