"""Relations over finite-domain attributes.

A :class:`Relation` is the basic carrier of the paper's model: a module's
functionality is a relation satisfying the functional dependency I -> O
(Section 2.1), and a workflow's provenance relation is the input/output join
of its module relations (Section 2.3).

Tuples are stored as plain Python tuples in the schema's column order, with a
named-dict interface on top.  Relations are immutable value objects:
projection, selection and join all return new relations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..exceptions import FunctionalDependencyError, SchemaError
from .attributes import Attribute, Schema, Value

__all__ = ["Row", "Relation"]


Row = Mapping[str, Value]


class Relation:
    """An immutable set of tuples over a :class:`Schema`.

    Parameters
    ----------
    schema:
        Column schema.  Tuples are stored in this column order.
    rows:
        Iterable of mappings from attribute name to value.  Duplicate rows
        are collapsed (relations are sets, as in the paper).
    check_domains:
        When true (default), every value is validated against its attribute
        domain.  Pass ``False`` for hot paths that construct already-valid
        rows (e.g. possible-world enumeration).
    """

    __slots__ = ("_schema", "_rows", "_row_set", "_project_cache")

    #: Bound on memoized projections per relation (FIFO eviction).  Privacy
    #: analysis projects the same few attribute subsets over and over
    #: (module inputs, outputs, visible views), so a small cache suffices.
    _PROJECT_CACHE_LIMIT = 32

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Row] = (),
        check_domains: bool = True,
    ) -> None:
        self._schema = schema
        names = schema.names
        materialized: list[tuple[Value, ...]] = []
        seen: set[tuple[Value, ...]] = set()
        for row in rows:
            tup = self._row_to_tuple(row, names, check_domains)
            if tup not in seen:
                seen.add(tup)
                materialized.append(tup)
        self._rows = tuple(materialized)
        self._row_set = seen
        self._project_cache: dict[tuple[str, ...], "Relation"] = {}

    def _row_to_tuple(
        self, row: Row, names: Sequence[str], check_domains: bool
    ) -> tuple[Value, ...]:
        if isinstance(row, tuple) and len(row) == len(names):
            values = row
        else:
            try:
                values = tuple(row[name] for name in names)
            except KeyError as exc:
                raise SchemaError(
                    f"row {row!r} is missing attribute {exc.args[0]!r}"
                ) from exc
        if check_domains:
            for name, value in zip(names, values):
                self._schema[name].domain.validate(value)
        return values

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_tuples(
        cls,
        schema: Schema,
        tuples: Iterable[Sequence[Value]],
        check_domains: bool = True,
    ) -> "Relation":
        """Build a relation from positional tuples in schema column order."""
        names = schema.names
        rows = []
        for tup in tuples:
            if len(tup) != len(names):
                raise SchemaError(
                    f"tuple {tup!r} has {len(tup)} values, schema has "
                    f"{len(names)} attributes"
                )
            rows.append(dict(zip(names, tup)))
        return cls(schema, rows, check_domains=check_domains)

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        return cls(schema, ())

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Value]]:
        names = self._schema.names
        for tup in self._rows:
            yield dict(zip(names, tup))

    def __contains__(self, row: Row) -> bool:
        names = self._schema.names
        try:
            tup = tuple(row[name] for name in names)
        except (KeyError, TypeError):
            return False
        return tup in self._row_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._schema.names == other._schema.names
            and self._row_set == other._row_set
        )

    def __hash__(self) -> int:
        return hash((self._schema.names, frozenset(self._row_set)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({', '.join(self._schema.names)}; {len(self)} rows)"

    # -- accessors -----------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self._schema.names

    @property
    def tuples(self) -> tuple[tuple[Value, ...], ...]:
        """Raw tuples in schema column order (insertion order preserved)."""
        return self._rows

    def row(self, index: int) -> dict[str, Value]:
        """The ``index``-th row as a name -> value dict."""
        return dict(zip(self._schema.names, self._rows[index]))

    def column(self, name: str) -> tuple[Value, ...]:
        """All values of one attribute, in row order (with duplicates)."""
        pos = self._schema.names.index(name)
        if name not in self._schema:
            raise SchemaError(f"unknown attribute {name!r}")
        return tuple(tup[pos] for tup in self._rows)

    def distinct_values(self, name: str) -> set[Value]:
        """Set of values taken by attribute ``name`` in this relation."""
        return set(self.column(name))

    # -- relational algebra ---------------------------------------------------
    def project(self, names: Iterable[str]) -> "Relation":
        """Projection ``pi_names(R)``; duplicates are collapsed.

        Results are memoized per attribute-name tuple (relations are
        immutable, so a projection never goes stale); possible-worlds
        enumeration and privacy checks re-project the same visible sets
        many times.
        """
        ordered = self._schema.project_order(names)
        cached = self._project_cache.get(ordered)
        if cached is not None:
            return cached
        positions = [self._schema.names.index(name) for name in ordered]
        sub_schema = self._schema.subset(ordered)
        projected = (
            tuple(tup[pos] for pos in positions) for tup in self._rows
        )
        result = Relation.from_tuples(sub_schema, projected, check_domains=False)
        if len(self._project_cache) >= self._PROJECT_CACHE_LIMIT:
            self._project_cache.pop(next(iter(self._project_cache)))
        self._project_cache[ordered] = result
        return result

    def select(self, predicate: Callable[[dict[str, Value]], bool]) -> "Relation":
        """Selection: rows for which ``predicate(row_dict)`` is true."""
        names = self._schema.names
        kept = [
            tup
            for tup in self._rows
            if predicate(dict(zip(names, tup)))
        ]
        return Relation.from_tuples(self._schema, kept, check_domains=False)

    def select_equals(self, assignment: Mapping[str, Value]) -> "Relation":
        """Rows matching a partial assignment (conjunctive equality)."""
        positions = [
            (self._schema.names.index(name), value)
            for name, value in assignment.items()
        ]
        kept = [
            tup
            for tup in self._rows
            if all(tup[pos] == value for pos, value in positions)
        ]
        return Relation.from_tuples(self._schema, kept, check_domains=False)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on shared attribute names.

        This is the ``R = R_1 join ... join R_n`` operation of Section 2.3:
        shared names are the data edges of the workflow.  If the relations
        share no attributes the result is the cross product.
        """
        left_names = self._schema.names
        right_names = other._schema.names
        shared = [name for name in right_names if name in self._schema]
        right_only = [name for name in right_names if name not in self._schema]

        joined_schema = self._schema.union(other._schema)

        left_shared_pos = [left_names.index(name) for name in shared]
        right_shared_pos = [right_names.index(name) for name in shared]
        right_only_pos = [right_names.index(name) for name in right_only]

        # Hash join on the shared-name key.
        index: dict[tuple[Value, ...], list[tuple[Value, ...]]] = {}
        for rtup in other._rows:
            key = tuple(rtup[pos] for pos in right_shared_pos)
            index.setdefault(key, []).append(rtup)

        out_rows = []
        for ltup in self._rows:
            key = tuple(ltup[pos] for pos in left_shared_pos)
            for rtup in index.get(key, ()):
                out_rows.append(ltup + tuple(rtup[pos] for pos in right_only_pos))
        return Relation.from_tuples(joined_schema, out_rows, check_domains=False)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes; names not in ``mapping`` are kept."""
        new_attrs = []
        for attr in self._schema:
            new_name = mapping.get(attr.name, attr.name)
            new_attrs.append(Attribute(new_name, attr.domain, attr.cost))
        return Relation.from_tuples(Schema(new_attrs), self._rows, check_domains=False)

    def union(self, other: "Relation") -> "Relation":
        """Set union of two relations over the same attribute names."""
        if self._schema.names != other._schema.names:
            raise SchemaError("union requires identical schemas")
        return Relation.from_tuples(
            self._schema, self._rows + other._rows, check_domains=False
        )

    def difference(self, other: "Relation") -> "Relation":
        """Set difference of two relations over the same attribute names."""
        if self._schema.names != other._schema.names:
            raise SchemaError("difference requires identical schemas")
        kept = [tup for tup in self._rows if tup not in other._row_set]
        return Relation.from_tuples(self._schema, kept, check_domains=False)

    # -- grouping -------------------------------------------------------------
    def group_by(
        self, names: Sequence[str]
    ) -> dict[tuple[Value, ...], "Relation"]:
        """Group rows by their projection on ``names``.

        Returns a mapping from the key tuple (in the order of ``names`` after
        re-ordering to schema order) to the sub-relation of matching rows.
        Used by the standalone privacy check, which groups executions by the
        visible input attributes.
        """
        ordered = self._schema.project_order(names)
        positions = [self._schema.names.index(name) for name in ordered]
        groups: dict[tuple[Value, ...], list[tuple[Value, ...]]] = {}
        for tup in self._rows:
            key = tuple(tup[pos] for pos in positions)
            groups.setdefault(key, []).append(tup)
        return {
            key: Relation.from_tuples(self._schema, rows, check_domains=False)
            for key, rows in groups.items()
        }

    # -- functional dependencies ----------------------------------------------
    def satisfies_fd(
        self, determinant: Iterable[str], dependent: Iterable[str]
    ) -> bool:
        """Check the functional dependency ``determinant -> dependent``."""
        det = self._schema.project_order(determinant)
        dep = self._schema.project_order(dependent)
        det_pos = [self._schema.names.index(name) for name in det]
        dep_pos = [self._schema.names.index(name) for name in dep]
        seen: dict[tuple[Value, ...], tuple[Value, ...]] = {}
        for tup in self._rows:
            key = tuple(tup[pos] for pos in det_pos)
            value = tuple(tup[pos] for pos in dep_pos)
            if seen.setdefault(key, value) != value:
                return False
        return True

    def assert_fd(self, determinant: Iterable[str], dependent: Iterable[str]) -> None:
        """Raise :class:`FunctionalDependencyError` if the FD is violated."""
        if not self.satisfies_fd(determinant, dependent):
            raise FunctionalDependencyError(
                f"relation violates FD {sorted(determinant)} -> {sorted(dependent)}"
            )

    # -- pretty printing -------------------------------------------------------
    def to_text(self, max_rows: int | None = None) -> str:
        """Fixed-width text rendering, used by examples and reports."""
        names = self._schema.names
        rows = self._rows if max_rows is None else self._rows[:max_rows]
        widths = [
            (
                max(len(str(name)), *(len(str(tup[i])) for tup in rows))
                if rows
                else len(str(name))
            )
            for i, name in enumerate(names)
        ]
        header = "  ".join(str(name).ljust(w) for name, w in zip(names, widths))
        sep = "  ".join("-" * w for w in widths)
        lines = [header, sep]
        for tup in rows:
            lines.append("  ".join(str(v).ljust(w) for v, w in zip(tup, widths)))
        if max_rows is not None and len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)
