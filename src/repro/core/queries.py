"""Provenance queries over workflows and views.

The paper's utility argument for projection-based views (Related Work,
Section 1) is that users keep full *structural* provenance: they still know
which module produced which (named) data item and whether two data items
depend on each other — only selected *values* are hidden.  This module
provides those structural queries:

* lineage / dependency queries over the workflow DAG (which attributes and
  modules an attribute depends on, and what it influences downstream),
* the same queries restricted to a provenance view (what a user can still
  see), and
* value-level lineage for a single execution.

These are the "select-project-join style queries over the provenance
relation" the paper contrasts with aggregate queries; examples and tests use
them to demonstrate that hiding attributes does not destroy structural
utility.
"""

from __future__ import annotations

from typing import Mapping

import networkx as nx

from ..exceptions import SchemaError
from .attributes import Value
from .view import ProvenanceView
from .workflow import Workflow

__all__ = [
    "attribute_dependency_graph",
    "upstream_attributes",
    "downstream_attributes",
    "depends_on",
    "producing_path",
    "module_lineage",
    "execution_lineage",
    "visible_upstream",
    "view_dependency_pairs",
]


def attribute_dependency_graph(workflow: Workflow) -> nx.DiGraph:
    """A DAG over attributes: edge a -> b iff some module reads a and writes b."""
    graph = nx.DiGraph()
    graph.add_nodes_from(workflow.attribute_names)
    for module in workflow.modules:
        for source in module.input_names:
            for target in module.output_names:
                graph.add_edge(source, target, module=module.name)
    return graph


def _check_attribute(workflow: Workflow, attribute: str) -> None:
    if attribute not in workflow.schema:
        raise SchemaError(f"unknown attribute {attribute!r}")


def upstream_attributes(workflow: Workflow, attribute: str) -> frozenset[str]:
    """All attributes the given attribute (transitively) depends on."""
    _check_attribute(workflow, attribute)
    graph = attribute_dependency_graph(workflow)
    return frozenset(nx.ancestors(graph, attribute))


def downstream_attributes(workflow: Workflow, attribute: str) -> frozenset[str]:
    """All attributes that (transitively) depend on the given attribute."""
    _check_attribute(workflow, attribute)
    graph = attribute_dependency_graph(workflow)
    return frozenset(nx.descendants(graph, attribute))


def depends_on(workflow: Workflow, target: str, source: str) -> bool:
    """Does ``target`` (transitively) depend on ``source``?"""
    _check_attribute(workflow, target)
    _check_attribute(workflow, source)
    if target == source:
        return True
    return source in upstream_attributes(workflow, target)


def producing_path(workflow: Workflow, source: str, target: str) -> list[str]:
    """One module path along which ``source`` flows into ``target``.

    Returns the list of module names on a shortest dependency path, or an
    empty list when ``target`` does not depend on ``source``.
    """
    _check_attribute(workflow, source)
    _check_attribute(workflow, target)
    graph = attribute_dependency_graph(workflow)
    try:
        attribute_path = nx.shortest_path(graph, source, target)
    except nx.NetworkXNoPath:
        return []
    modules = []
    for a, b in zip(attribute_path, attribute_path[1:]):
        modules.append(graph.edges[a, b]["module"])
    return modules


def module_lineage(workflow: Workflow, attribute: str) -> frozenset[str]:
    """Names of all modules involved in producing ``attribute``."""
    _check_attribute(workflow, attribute)
    producer = workflow.producer_of(attribute)
    if producer is None:
        return frozenset()
    involved = {producer.name}
    for upstream in upstream_attributes(workflow, attribute):
        upstream_producer = workflow.producer_of(upstream)
        if upstream_producer is not None:
            involved.add(upstream_producer.name)
    return frozenset(involved)


def execution_lineage(
    workflow: Workflow, initial_inputs: Mapping[str, Value], attribute: str
) -> dict[str, Value]:
    """Value-level lineage: the values of everything ``attribute`` depends on.

    Runs the workflow once on ``initial_inputs`` and returns the assignment
    restricted to the attribute itself plus its upstream closure.
    """
    _check_attribute(workflow, attribute)
    state = workflow.run(initial_inputs)
    relevant = set(upstream_attributes(workflow, attribute)) | {attribute}
    return {name: state[name] for name in workflow.attribute_names if name in relevant}


def visible_upstream(view: ProvenanceView, attribute: str) -> frozenset[str]:
    """The upstream attributes of ``attribute`` that remain visible in the view."""
    return frozenset(
        upstream_attributes(view.workflow, attribute) & set(view.visible_attributes)
    )


def view_dependency_pairs(view: ProvenanceView) -> frozenset[tuple[str, str]]:
    """All (source, target) dependency pairs between *visible* attributes.

    The paper's utility claim: these pairs are fully preserved by the
    projection view — hiding values never hides connections.  Tests assert
    that this set only shrinks by removing pairs that mention hidden
    attributes, never by cutting visible-to-visible dependencies.
    """
    workflow = view.workflow
    graph = attribute_dependency_graph(workflow)
    closure = nx.transitive_closure_dag(graph)
    visible = set(view.visible_attributes)
    return frozenset(
        (source, target)
        for source, target in closure.edges
        if source in visible and target in visible
    )
