"""The standalone Secure-View problem (Section 3).

For a single module ``m`` with relation ``R`` and additive attribute costs,
the standalone Secure-View problem asks for a visible subset ``V`` such that
``m`` is Γ-standalone-private w.r.t. ``V`` and the cost of the hidden
attributes ``c(V̄)`` is minimized.  The paper shows the problem needs time
exponential in the number of attributes ``k`` and linear in the number of
executions ``N`` in the worst case (Theorems 1–3); the algorithms here are
the matching upper bounds of Section 3.2:

* :class:`SafeViewOracle` — the Safe-View decision procedure (is ``V``
  safe?), with a call counter so experiments can report oracle complexity,
* :func:`minimum_cost_safe_subset` — Algorithm 2: exhaustive search over
  visible subsets for the minimum-cost hidden set,
* :func:`enumerate_safe_hidden_subsets` / :func:`minimal_safe_hidden_subsets`
  — the "output all safe attribute sets" variant mentioned at the end of
  Section 3.2, which Sections 4–5 reuse as requirement lists.

With ``backend="kernel"`` (the default) the safe-subset sweeps behind
these entry points are batched: the compiled kernel evaluates many
candidate masks per vectorized pass over the packed relation instead of
one subset at a time (see :mod:`repro.kernel.module_kernel`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..exceptions import InfeasibleError, PrivacyError
from .module import Module
from .privacy import is_standalone_private, standalone_privacy_level
from .relation import Relation

__all__ = [
    "SafeViewOracle",
    "StandaloneSolution",
    "minimum_cost_safe_subset",
    "enumerate_safe_hidden_subsets",
    "minimal_safe_hidden_subsets",
    "pareto_minimal_pairs",
    "safe_cardinality_pairs",
    "minimal_safe_cardinality_pairs",
]


class SafeViewOracle:
    """The Safe-View oracle of Section 3: decide whether ``V`` is safe.

    Wraps the counting-based privacy check and counts calls, memoizing
    answers (the oracle is deterministic).  The call counter lets the
    benchmarks report how many subsets an algorithm probed, mirroring the
    communication-complexity measurements of Theorem 3.
    """

    def __init__(
        self,
        module: Module,
        gamma: int,
        relation: Relation | None = None,
        backend: str | None = None,
    ) -> None:
        if gamma < 1:
            raise PrivacyError("the privacy requirement Γ must be at least 1")
        self.module = module
        self.gamma = gamma
        self.relation = relation
        self.backend = backend
        self.calls = 0
        self._cache: dict[frozenset[str], bool] = {}

    def is_safe(self, visible: Iterable[str]) -> bool:
        """Is the module Γ-standalone-private w.r.t. visible set ``V``?"""
        key = frozenset(visible)
        self.calls += 1
        cached = self._cache.get(key)
        if cached is None:
            cached = is_standalone_private(
                self.module,
                key,
                self.gamma,
                relation=self.relation,
                backend=self.backend,
            )
            self._cache[key] = cached
        return cached

    def is_safe_hidden(self, hidden: Iterable[str]) -> bool:
        """Same oracle phrased on the hidden side ``V̄``."""
        hidden_set = set(hidden)
        visible = [
            name for name in self.module.attribute_names if name not in hidden_set
        ]
        return self.is_safe(visible)

    def reset_counter(self) -> None:
        self.calls = 0


@dataclass(frozen=True)
class StandaloneSolution:
    """Result of the standalone Secure-View optimization for one module."""

    module_name: str
    hidden_attributes: frozenset[str]
    visible_attributes: frozenset[str]
    cost: float
    gamma: int
    oracle_calls: int = 0
    meta: dict = field(default_factory=dict, compare=False)


def _iter_hidden_subsets(names: Sequence[str]) -> Iterator[tuple[str, ...]]:
    """All subsets of ``names``, smallest first (so cheap answers come early)."""
    for size in range(len(names) + 1):
        yield from itertools.combinations(names, size)


def minimum_cost_safe_subset(
    module: Module,
    gamma: int,
    relation: Relation | None = None,
    cost_limit: float | None = None,
    hidable: Iterable[str] | None = None,
    backend: str | None = None,
) -> StandaloneSolution:
    """Algorithm 2: exhaustive minimum-cost safe subset for one module.

    Parameters
    ----------
    module, gamma:
        The module and its privacy requirement Γ.
    relation:
        Optional restriction of the module relation (defaults to the full
        standalone relation).
    cost_limit:
        If given, only hidden sets of cost ``<= cost_limit`` are considered
        (the decision version of the problem); :class:`InfeasibleError` is
        raised when no such safe set exists.
    hidable:
        Restrict the attributes that may be hidden (defaults to all of
        ``I ∪ O``); useful when some attributes must stay visible.

    Returns the minimum-cost solution; raises :class:`InfeasibleError` when
    even hiding every hidable attribute does not reach Γ-privacy.
    """
    oracle = SafeViewOracle(module, gamma, relation=relation, backend=backend)
    schema = module.schema
    names = tuple(hidable) if hidable is not None else module.attribute_names
    for name in names:
        schema[name]  # validates the attribute exists

    best: tuple[float, tuple[str, ...]] | None = None
    for hidden in _iter_hidden_subsets(names):
        cost = schema.total_cost(hidden)
        if cost_limit is not None and cost > cost_limit:
            continue
        if best is not None and cost >= best[0]:
            continue
        if oracle.is_safe_hidden(hidden):
            best = (cost, hidden)
    if best is None:
        raise InfeasibleError(
            f"module {module.name!r} admits no safe subset for Γ={gamma}"
            + (f" within cost {cost_limit}" if cost_limit is not None else "")
        )
    cost, hidden = best
    hidden_set = frozenset(hidden)
    return StandaloneSolution(
        module_name=module.name,
        hidden_attributes=hidden_set,
        visible_attributes=frozenset(set(module.attribute_names) - hidden_set),
        cost=cost,
        gamma=gamma,
        oracle_calls=oracle.calls,
        meta={"privacy_level": standalone_privacy_level(
            module,
            set(module.attribute_names) - hidden_set,
            relation=relation,
            backend=backend,
        )},
    )


def enumerate_safe_hidden_subsets(
    module: Module,
    gamma: int,
    relation: Relation | None = None,
    hidable: Iterable[str] | None = None,
    backend: str | None = None,
) -> list[frozenset[str]]:
    """All hidden subsets ``V̄ ⊆ I ∪ O`` whose complement is safe for Γ.

    The list is sorted by (size, lexicographic) order.  This is the
    exhaustive enumeration mentioned at the end of Section 3.2; Sections 4–5
    use it to build requirement lists.  The kernel backend runs the sweep on
    the module's packed relation with monotonicity pruning; the reference
    backend probes the Safe-View oracle subset by subset.
    """
    from ..kernel import compile_module, resolve_backend

    if resolve_backend(backend) == "kernel":
        return compile_module(module, relation).enumerate_safe_hidden_subsets(
            gamma, hidable=hidable
        )
    oracle = SafeViewOracle(module, gamma, relation=relation, backend="reference")
    names = tuple(hidable) if hidable is not None else module.attribute_names
    safe = [
        frozenset(hidden)
        for hidden in _iter_hidden_subsets(names)
        if oracle.is_safe_hidden(hidden)
    ]
    return sorted(safe, key=lambda s: (len(s), tuple(sorted(s))))


def minimal_safe_hidden_subsets(
    module: Module,
    gamma: int,
    relation: Relation | None = None,
    hidable: Iterable[str] | None = None,
    backend: str | None = None,
) -> list[frozenset[str]]:
    """The inclusion-minimal safe hidden subsets of a module.

    By Proposition 1 safety is monotone in the hidden set (hiding more never
    hurts), so the minimal hidden sets form an antichain that fully describes
    all safe choices.  These are exactly the pairs ``(I_i^j, O_i^j)`` a
    set-constraint requirement list enumerates.
    """
    from ..kernel import compile_module, resolve_backend

    if resolve_backend(backend) == "kernel":
        return compile_module(module, relation).minimal_safe_hidden_subsets(
            gamma, hidable=hidable
        )
    safe = enumerate_safe_hidden_subsets(
        module, gamma, relation=relation, hidable=hidable, backend="reference"
    )
    minimal: list[frozenset[str]] = []
    for candidate in safe:  # sorted by size, so subsets come before supersets
        if not any(other <= candidate for other in minimal):
            minimal.append(candidate)
    return minimal


def safe_cardinality_pairs(
    module: Module,
    gamma: int,
    relation: Relation | None = None,
    backend: str | None = None,
) -> list[tuple[int, int]]:
    """All pairs ``(α, β)`` such that hiding *any* α inputs and β outputs is safe.

    This is the semantics of cardinality constraints in Section 4.2: a pair
    is valid only if every choice of α input attributes and β output
    attributes yields a safe hidden set.  The full (non-minimal) list is
    returned sorted lexicographically.
    """
    from ..kernel import compile_module, resolve_backend

    if resolve_backend(backend) == "kernel":
        return compile_module(module, relation).safe_cardinality_pairs(gamma)
    oracle = SafeViewOracle(module, gamma, relation=relation, backend="reference")
    inputs = module.input_names
    outputs = module.output_names
    valid: list[tuple[int, int]] = []
    for alpha in range(len(inputs) + 1):
        for beta in range(len(outputs) + 1):
            ok = all(
                oracle.is_safe_hidden(set(ins) | set(outs))
                for ins in itertools.combinations(inputs, alpha)
                for outs in itertools.combinations(outputs, beta)
            )
            if ok:
                valid.append((alpha, beta))
    return valid


def pareto_minimal_pairs(pairs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """The Pareto frontier of ``(α, β)`` pairs under component-wise dominance.

    A pair dominates another if it requires no more hidden inputs *and* no
    more hidden outputs.  Shared by the reference and compiled derivation
    paths so the dominance rule can never diverge between them.
    """
    minimal: list[tuple[int, int]] = []
    for alpha, beta in sorted(pairs):
        if not any(a <= alpha and b <= beta for a, b in minimal):
            minimal.append((alpha, beta))
    return minimal


def minimal_safe_cardinality_pairs(
    module: Module,
    gamma: int,
    relation: Relation | None = None,
    backend: str | None = None,
) -> list[tuple[int, int]]:
    """The Pareto-minimal ``(α, β)`` pairs among :func:`safe_cardinality_pairs`.

    The Pareto frontier is what a non-redundant cardinality requirement
    list ``L_i`` contains (Section 4.2 / B.4).
    """
    return pareto_minimal_pairs(
        safe_cardinality_pairs(module, gamma, relation=relation, backend=backend)
    )
