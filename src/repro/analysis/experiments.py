"""Experiment harness: solver comparisons and parameter sweeps.

This is the glue the benchmarks and EXPERIMENTS.md use: run several solvers
on the same Secure-View instance (optionally against the exact optimum),
repeat randomized solvers over seeds, and sweep instance parameters while
collecting flat records that the reporting layer renders.

All solving goes through one shared :class:`~repro.engine.Planner` per
instance, so requirement derivation, provenance materialization and
verification out-sets are computed once per instance rather than once per
solver run — on derivation-heavy instances a multi-solver comparison is
severalfold faster than the pre-engine harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..engine import Planner
from ..exceptions import ProvenanceError
from .metrics import approximation_ratio, solution_summary

__all__ = ["SolverRun", "compare_solvers", "sweep", "time_solver"]


@dataclass(frozen=True)
class SolverRun:
    """One solver execution: its solution, cost, wall time and (optionally) ratio."""

    method: str
    solution: SecureViewSolution | None
    cost: float
    seconds: float
    ratio: float | None = None
    error: str = ""
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.solution is not None

    def as_record(self) -> dict[str, object]:
        record: dict[str, object] = {
            "method": self.method,
            "cost": self.cost,
            "seconds": self.seconds,
        }
        if self.ratio is not None:
            record["ratio"] = self.ratio
        if self.error:
            record["error"] = self.error
        record.update(self.extra)
        return record


def time_solver(
    problem: SecureViewProblem,
    method: str,
    planner: Planner | None = None,
    **kwargs,
) -> SolverRun:
    """Run one solver, timing it and tolerating solver-level failures.

    Pass a ``planner`` (wrapping the same problem) to share its derivation
    cache across runs; one is created ad hoc otherwise.
    """
    if planner is None:
        planner = Planner.from_problem(problem)
    start = time.perf_counter()
    try:
        result = planner.solve(solver=method, **kwargs)
    except ProvenanceError as exc:
        return SolverRun(
            method=method,
            solution=None,
            cost=float("inf"),
            seconds=time.perf_counter() - start,
            error=str(exc),
        )
    return SolverRun(
        method=method,
        solution=result.solution,
        cost=result.cost,
        seconds=result.seconds,
        extra={"solver": result.solver},
    )


def _is_randomized(planner: Planner, method: str) -> bool:
    """Does the method (after ``auto`` resolution) take rounding randomness?"""
    try:
        return planner.resolve(method).randomized
    except ProvenanceError:
        return False


def compare_solvers(
    problem: SecureViewProblem,
    methods: Sequence[str],
    seeds: Sequence[int] = (0,),
    include_exact: bool = True,
    planner: Planner | None = None,
) -> list[dict[str, object]]:
    """Run several solvers on one instance and report costs / ratios.

    Randomized solvers (per registry metadata) are repeated once per seed
    and reported seed by seed; deterministic solvers run once.  When
    ``include_exact`` is true the exact IP optimum is computed first and
    every record carries its approximation ratio.  All runs share one
    planner, so the instance's requirement derivation happens only once.
    """
    if planner is None:
        planner = Planner.from_problem(problem)
    optimum: float | None = None
    records: list[dict[str, object]] = []
    if include_exact:
        exact_run = time_solver(problem, "exact", planner=planner)
        if exact_run.succeeded:
            optimum = exact_run.cost
            exact_record = solution_summary(problem, exact_run.solution, optimum)
        else:
            exact_record = {"method": "exact", "cost": float("inf"), "error": exact_run.error}
        exact_record["seconds"] = exact_run.seconds
        records.append(exact_record)

    for method in methods:
        if method == "exact" and include_exact:
            continue
        method_seeds: Sequence[int | None]
        if _is_randomized(planner, method):
            method_seeds = list(seeds)
        else:
            method_seeds = [None]
        for seed in method_seeds:
            kwargs = {"seed": seed} if seed is not None else {}
            run = time_solver(problem, method, planner=planner, **kwargs)
            if run.succeeded:
                record = solution_summary(problem, run.solution, optimum)
            else:
                record = {"method": method, "cost": float("inf"), "error": run.error}
            record["seconds"] = run.seconds
            if seed is not None:
                record["seed"] = seed
            records.append(record)
    return records


def sweep(
    problem_factory: Callable[[object], SecureViewProblem],
    parameter_values: Iterable[object],
    methods: Sequence[str],
    seeds: Sequence[int] = (0,),
    include_exact: bool = True,
    parameter_name: str = "param",
) -> list[dict[str, object]]:
    """Run :func:`compare_solvers` across a parameter sweep.

    ``problem_factory(value)`` builds the instance for each parameter value;
    every record is tagged with the parameter so the reporting layer can
    group by it.  Each instance gets its own planner (instances differ), but
    within an instance all solvers share one derivation.
    """
    records: list[dict[str, object]] = []
    for value in parameter_values:
        problem = problem_factory(value)
        for record in compare_solvers(
            problem, methods, seeds=seeds, include_exact=include_exact
        ):
            tagged = {parameter_name: value, **record}
            records.append(tagged)
    return records
