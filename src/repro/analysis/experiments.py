"""Experiment harness: solver comparisons and parameter sweeps.

This is the glue the benchmarks and EXPERIMENTS.md use: run several solvers
on the same Secure-View instance (optionally against the exact optimum),
repeat randomized solvers over seeds, and sweep instance parameters while
collecting flat records that the reporting layer renders.

Since PR 3 both :func:`compare_solvers` and :func:`sweep` are built on the
parallel sweep executor (:func:`repro.engine.run_sweep`): pass ``n_jobs=``
to fan the grid out over worker processes and ``store=`` to persist (and
reuse) derivations and solve results across runs.  ``n_jobs=1`` runs the
*same* cell runner in-process, so serial and parallel invocations produce
identical records (modulo timings).  Within one instance all solver runs
share one planner, so requirement derivation, provenance materialization
and verification out-sets are computed once per instance rather than once
per solver run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..engine import Planner, SweepInstance, SweepSpec, run_sweep
from ..engine.store import DerivationStore
from ..exceptions import ProvenanceError
from ..workloads.serialization import problem_to_dict
from .metrics import approximation_ratio, solution_summary

__all__ = ["SolverRun", "compare_solvers", "sweep", "time_solver"]


@dataclass(frozen=True)
class SolverRun:
    """One solver execution: its solution, cost, wall time and (optionally) ratio."""

    method: str
    solution: SecureViewSolution | None
    cost: float
    seconds: float
    ratio: float | None = None
    error: str = ""
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.solution is not None

    def as_record(self) -> dict[str, object]:
        record: dict[str, object] = {
            "method": self.method,
            "cost": self.cost,
            "seconds": self.seconds,
        }
        if self.ratio is not None:
            record["ratio"] = self.ratio
        if self.error:
            record["error"] = self.error
        record.update(self.extra)
        return record


def time_solver(
    problem: SecureViewProblem,
    method: str,
    planner: Planner | None = None,
    **kwargs,
) -> SolverRun:
    """Run one solver, timing it and tolerating solver-level failures.

    Pass a ``planner`` (wrapping the same problem) to share its derivation
    cache across runs; one is created ad hoc otherwise.
    """
    if planner is None:
        planner = Planner.from_problem(problem)
    start = time.perf_counter()
    try:
        result = planner.solve(solver=method, **kwargs)
    except ProvenanceError as exc:
        return SolverRun(
            method=method,
            solution=None,
            cost=float("inf"),
            seconds=time.perf_counter() - start,
            error=str(exc),
        )
    return SolverRun(
        method=method,
        solution=result.solution,
        cost=result.cost,
        seconds=result.seconds,
        extra={"solver": result.solver},
    )


def _is_randomized(planner: Planner, method: str) -> bool:
    """Does the method (after ``auto`` resolution) take rounding randomness?"""
    try:
        return planner.resolve(method).randomized
    except ProvenanceError:
        return False


def _solver_seed_pairs(
    planner: Planner,
    methods: Sequence[str],
    seeds: Sequence[int],
    include_exact: bool,
) -> tuple[tuple[str, int | None], ...]:
    """The (solver, seed) cells one comparison runs, in report order."""
    pairs: list[tuple[str, int | None]] = []
    if include_exact:
        pairs.append(("exact", None))
    for method in methods:
        if method == "exact" and include_exact:
            continue
        if _is_randomized(planner, method):
            pairs.extend((method, seed) for seed in seeds)
        else:
            pairs.append((method, None))
    return tuple(pairs)


def _summary_from_cell(
    problem: SecureViewProblem,
    record: Mapping[str, object],
    optimum: float | None,
) -> dict[str, object]:
    """Map one executor cell record to the classic comparison-record shape."""
    if "error" in record:
        summary: dict[str, object] = {
            "method": str(record["solver"]),
            "cost": float("inf"),
            "error": str(record["error"]),
            "seconds": float(record.get("seconds", 0.0)),
        }
    else:
        hidden = len(record["hidden_attributes"])
        total = len(problem.workflow.attribute_names)
        summary = {
            "method": str(record["method"]),
            "cost": record["cost"],
            "hidden_attributes": hidden,
            "privatized_modules": len(record["privatized_modules"]),
            "hidden_fraction": hidden / total if total else 0.0,
            "n_modules": len(problem.workflow),
            "n_attributes": total,
            "gamma_sharing": problem.workflow.data_sharing_degree(),
            "lmax": problem.lmax,
        }
        if optimum is not None:
            summary["optimum"] = optimum
            summary["ratio"] = approximation_ratio(float(record["cost"]), optimum)
        summary["seconds"] = record["seconds"]
    if record.get("seed") is not None:
        summary["seed"] = record["seed"]
    return summary


def _comparison_records(
    problem: SecureViewProblem,
    cell_records: Sequence[Mapping[str, object]],
    include_exact: bool,
) -> list[dict[str, object]]:
    optimum: float | None = None
    if include_exact and cell_records and "error" not in cell_records[0]:
        optimum = float(cell_records[0]["cost"])
    return [
        _summary_from_cell(problem, record, optimum) for record in cell_records
    ]


def compare_solvers(
    problem: SecureViewProblem,
    methods: Sequence[str],
    seeds: Sequence[int] = (0,),
    include_exact: bool = True,
    planner: Planner | None = None,
    n_jobs: int = 1,
    store: DerivationStore | str | None = None,
) -> list[dict[str, object]]:
    """Run several solvers on one instance and report costs / ratios.

    Randomized solvers (per registry metadata) are repeated once per seed
    and reported seed by seed; deterministic solvers run once.  When
    ``include_exact`` is true the exact IP optimum is computed first and
    every record carries its approximation ratio.  All runs share one
    planner (one requirement derivation); ``n_jobs > 1`` fans the runs out
    over worker processes through the sweep executor and ``store`` persists
    the derivations either way.

    ``n_jobs=1`` (and any call passing an explicit ``planner``) stays
    in-process on one planner cache — no serialization happens, which also
    keeps instances with high-arity modules viable (shipping an instance to
    a worker tabulates its functionality, which is exponential in module
    arity).  The in-process and executor paths produce identical records
    (modulo timings).
    """
    if planner is not None or n_jobs == 1:
        if planner is None:
            planner = Planner.from_problem(problem, store=store)
        return _compare_in_process(
            problem, methods, seeds, include_exact, planner
        )
    probe = Planner.from_problem(problem)
    pairs = _solver_seed_pairs(probe, methods, seeds, include_exact)
    instance = SweepInstance("instance", "problem", problem_to_dict(problem))
    spec = SweepSpec(instances=(instance,), solver_seed_pairs=pairs)
    report = run_sweep(spec, n_jobs=n_jobs, store=store)
    return _comparison_records(problem, report.records, include_exact)


def _compare_in_process(
    problem: SecureViewProblem,
    methods: Sequence[str],
    seeds: Sequence[int],
    include_exact: bool,
    planner: Planner,
) -> list[dict[str, object]]:
    """The legacy single-process path, sharing the caller's planner cache."""
    optimum: float | None = None
    records: list[dict[str, object]] = []
    if include_exact:
        exact_run = time_solver(problem, "exact", planner=planner)
        if exact_run.succeeded:
            optimum = exact_run.cost
            exact_record = solution_summary(problem, exact_run.solution, optimum)
        else:
            exact_record = {
                "method": "exact",
                "cost": float("inf"),
                "error": exact_run.error,
            }
        exact_record["seconds"] = exact_run.seconds
        records.append(exact_record)

    for method in methods:
        if method == "exact" and include_exact:
            continue
        method_seeds: Sequence[int | None]
        if _is_randomized(planner, method):
            method_seeds = list(seeds)
        else:
            method_seeds = [None]
        for seed in method_seeds:
            kwargs = {"seed": seed} if seed is not None else {}
            run = time_solver(problem, method, planner=planner, **kwargs)
            if run.succeeded:
                record = solution_summary(problem, run.solution, optimum)
            else:
                record = {"method": method, "cost": float("inf"), "error": run.error}
            record["seconds"] = run.seconds
            if seed is not None:
                record["seed"] = seed
            records.append(record)
    return records


def sweep(
    problem_factory: Callable[[object], SecureViewProblem],
    parameter_values: Iterable[object],
    methods: Sequence[str],
    seeds: Sequence[int] = (0,),
    include_exact: bool = True,
    parameter_name: str = "param",
    n_jobs: int = 1,
    store: DerivationStore | str | None = None,
) -> list[dict[str, object]]:
    """Run :func:`compare_solvers` across a parameter sweep.

    ``problem_factory(value)`` builds the instance for each parameter value;
    every record is tagged with the parameter so the reporting layer can
    group by it.  With ``n_jobs > 1`` the whole grid — every (instance,
    solver, seed) cell — goes through the parallel sweep executor in one
    shot, parallelizing across parameter values *and* solvers at once while
    each instance still pays its requirement derivation exactly once.

    ``n_jobs=1`` runs each comparison in-process without serializing the
    instances (required for workloads with high-arity modules, whose
    tabulated functionality is exponential); the records are identical to
    the executor path's modulo timings.
    """
    if n_jobs == 1:
        records: list[dict[str, object]] = []
        for value in parameter_values:
            problem = problem_factory(value)
            for record in compare_solvers(
                problem,
                methods,
                seeds=seeds,
                include_exact=include_exact,
                store=store,
            ):
                records.append({parameter_name: value, **record})
        return records

    instances: list[SweepInstance] = []
    pairs_by_label: dict[str, tuple[tuple[str, int | None], ...]] = {}
    problems_by_label: dict[str, SecureViewProblem] = {}
    values_by_label: dict[str, object] = {}
    for position, value in enumerate(parameter_values):
        problem = problem_factory(value)
        label = f"{parameter_name}={value!r}#{position}"
        probe = Planner.from_problem(problem)
        instances.append(SweepInstance(label, "problem", problem_to_dict(problem)))
        pairs_by_label[label] = _solver_seed_pairs(
            probe, methods, seeds, include_exact
        )
        problems_by_label[label] = problem
        values_by_label[label] = value

    spec = SweepSpec(
        instances=tuple(instances), solver_seed_pairs=pairs_by_label
    )
    report = run_sweep(spec, n_jobs=n_jobs, store=store)

    by_label: dict[str, list[dict[str, object]]] = {}
    for record in report.records:
        by_label.setdefault(record["workflow"], []).append(record)

    records: list[dict[str, object]] = []
    for instance in instances:
        label = instance.label
        problem = problems_by_label[label]
        for record in _comparison_records(
            problem, by_label.get(label, []), include_exact
        ):
            records.append({parameter_name: values_by_label[label], **record})
    return records
