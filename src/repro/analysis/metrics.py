"""Metrics used by the experiment harness and benchmarks.

The paper's results are about *cost ratios* (approximation factors) and
*privacy margins* (how far above Γ a view sits), so the metrics here are
small, composable helpers for exactly those quantities plus summary
statistics for repeated randomized runs.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable

from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..exceptions import SolverError

__all__ = [
    "approximation_ratio",
    "privacy_margin",
    "hidden_fraction",
    "RatioSummary",
    "summarize_ratios",
    "solution_summary",
]


def approximation_ratio(cost: float, optimum: float) -> float:
    """``cost / optimum`` with the usual conventions for zero optima."""
    if cost < 0 or optimum < 0:
        raise SolverError("costs must be non-negative")
    if optimum == 0:
        return 1.0 if cost == 0 else math.inf
    return cost / optimum


def privacy_margin(achieved_level: int, gamma: int) -> float:
    """``achieved / Γ``: 1.0 means exactly Γ-private, higher means slack."""
    if gamma < 1:
        raise SolverError("Γ must be at least 1")
    return achieved_level / gamma


def hidden_fraction(solution: SecureViewSolution) -> float:
    """Fraction of workflow attributes hidden by a solution."""
    total = len(solution.workflow.attribute_names)
    return len(solution.hidden_attributes) / total if total else 0.0


@dataclass(frozen=True)
class RatioSummary:
    """Summary statistics of a collection of approximation ratios."""

    count: int
    mean: float
    median: float
    maximum: float
    minimum: float

    def as_row(self) -> list[float]:
        return [self.count, self.mean, self.median, self.minimum, self.maximum]


def summarize_ratios(ratios: Iterable[float]) -> RatioSummary:
    """Mean / median / min / max of a non-empty collection of ratios."""
    values = [float(r) for r in ratios]
    if not values:
        raise SolverError("summarize_ratios needs at least one value")
    return RatioSummary(
        count=len(values),
        mean=statistics.fmean(values),
        median=statistics.median(values),
        maximum=max(values),
        minimum=min(values),
    )


def solution_summary(
    problem: SecureViewProblem,
    solution: SecureViewSolution,
    optimum: float | None = None,
) -> dict[str, float | int | str]:
    """A flat record describing one solver run (used for report rows)."""
    cost = solution.cost()
    record: dict[str, float | int | str] = {
        "method": str(solution.meta.get("method", "unknown")),
        "cost": cost,
        "hidden_attributes": len(solution.hidden_attributes),
        "privatized_modules": len(solution.privatized_modules),
        "hidden_fraction": hidden_fraction(solution),
        "n_modules": len(problem.workflow),
        "n_attributes": len(problem.workflow.attribute_names),
        "gamma_sharing": problem.workflow.data_sharing_degree(),
        "lmax": problem.lmax,
    }
    if optimum is not None:
        record["optimum"] = optimum
        record["ratio"] = approximation_ratio(cost, optimum)
    return record
