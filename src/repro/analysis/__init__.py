"""Experiment harness: metrics, solver comparisons, sweeps and text reports."""

from .experiments import SolverRun, compare_solvers, sweep, time_solver
from .metrics import (
    RatioSummary,
    approximation_ratio,
    hidden_fraction,
    privacy_margin,
    solution_summary,
    summarize_ratios,
)
from .reporting import Report, format_records, format_table, format_value

__all__ = [
    "approximation_ratio",
    "privacy_margin",
    "hidden_fraction",
    "RatioSummary",
    "summarize_ratios",
    "solution_summary",
    "SolverRun",
    "time_solver",
    "compare_solvers",
    "sweep",
    "Report",
    "format_table",
    "format_records",
    "format_value",
]
