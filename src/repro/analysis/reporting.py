"""Fixed-width text reporting for experiments and benchmarks.

The paper has no numeric tables of its own (it is a theory paper), so the
reporting layer standardizes how this reproduction prints its experiment
results: one fixed-width table per experiment, with a caption naming the
paper item it corresponds to.  The benchmark harness writes these tables to
stdout (captured into ``bench_output.txt``) and EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_value", "format_table", "format_records", "Report"]


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats are rounded, everything else is str()'d."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    caption: str = "",
    precision: int = 3,
) -> str:
    """Render a fixed-width table with an optional caption line."""
    rendered_rows = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:  # pragma: no cover - defensive against ragged rows
                widths.append(len(cell))
    lines = []
    if caption:
        lines.append(caption)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_records(
    records: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    caption: str = "",
    precision: int = 3,
) -> str:
    """Render a list of dict records as a table (columns default to keys of the first)."""
    if not records:
        return caption + "\n(no records)" if caption else "(no records)"
    keys = list(columns) if columns is not None else list(records[0].keys())
    rows = [[record.get(key, "") for key in keys] for record in records]
    return format_table(keys, rows, caption=caption, precision=precision)


class Report:
    """Accumulates captioned tables and renders them as one text document."""

    def __init__(self, title: str) -> None:
        self.title = title
        self._sections: list[str] = []

    def add_table(
        self,
        caption: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[object]],
        precision: int = 3,
    ) -> None:
        self._sections.append(
            format_table(headers, rows, caption=caption, precision=precision)
        )

    def add_records(
        self,
        caption: str,
        records: Sequence[Mapping[str, object]],
        columns: Sequence[str] | None = None,
        precision: int = 3,
    ) -> None:
        self._sections.append(
            format_records(
                records, columns=columns, caption=caption, precision=precision
            )
        )

    def add_text(self, text: str) -> None:
        self._sections.append(text)

    def render(self) -> str:
        header = f"== {self.title} =="
        return "\n\n".join([header, *self._sections])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
