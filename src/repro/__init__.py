"""provenance-views: secure provenance views for module privacy.

A production-quality reproduction of *"Provenance Views for Module Privacy"*
(Davidson, Khanna, Milo, Panigrahi, Roy — PODS 2011).  The library models
scientific workflows as DAGs of modules over finite-domain attributes,
materializes their provenance relations, and solves the **Secure-View**
problem: choose a minimum-cost set of attributes to hide (and, in workflows
with public modules, public modules to privatize) so that the functionality
of every private module remains Γ-private.

Layout
------
``repro.core``
    The formal model: attributes, relations, modules, workflows, provenance
    views, possible worlds, Γ-privacy, standalone analysis, requirement
    lists, composition theorems and the Secure-View problem definition.
``repro.optim``
    The optimization algorithms: exact branch and bound, the Figure-3 LP
    with Algorithm-1 randomized rounding (cardinality constraints), the
    ℓ_max LP rounding (set constraints), the (γ+1) greedy for bounded data
    sharing, and the general-workflow LP with privatization.
``repro.reductions``
    The hardness constructions as executable generators (set cover, vertex
    cover, label cover, UNSAT, set disjointness, the Theorem-3 adversary).
``repro.workloads``
    Module function libraries, the paper's example workflows, random and
    "scientific-workflow-shaped" generators.
``repro.analysis``
    Experiment harness: metrics, sweeps, and text reporting.
"""

from .core import (
    Attribute,
    BOOLEAN,
    CardinalityRequirement,
    CardinalityRequirementList,
    Domain,
    Module,
    ProvenanceView,
    Relation,
    Schema,
    SecureViewProblem,
    SecureViewSolution,
    SetRequirement,
    SetRequirementList,
    Workflow,
    assemble_all_private_solution,
    assemble_general_solution,
    is_gamma_private_workflow,
    is_standalone_private,
    is_workflow_private,
    minimum_cost_safe_subset,
    standalone_privacy_level,
    workflow_privacy_level,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Attribute",
    "BOOLEAN",
    "Domain",
    "Schema",
    "Relation",
    "Module",
    "Workflow",
    "ProvenanceView",
    "SecureViewSolution",
    "SecureViewProblem",
    "SetRequirement",
    "SetRequirementList",
    "CardinalityRequirement",
    "CardinalityRequirementList",
    "is_standalone_private",
    "standalone_privacy_level",
    "is_workflow_private",
    "workflow_privacy_level",
    "is_gamma_private_workflow",
    "minimum_cost_safe_subset",
    "assemble_all_private_solution",
    "assemble_general_solution",
]
