"""provenance-views: secure provenance views for module privacy.

A production-quality reproduction of *"Provenance Views for Module Privacy"*
(Davidson, Khanna, Milo, Panigrahi, Roy — PODS 2011).  The library models
scientific workflows as DAGs of modules over finite-domain attributes,
materializes their provenance relations, and solves the **Secure-View**
problem: choose a minimum-cost set of attributes to hide (and, in workflows
with public modules, public modules to privatize) so that the functionality
of every private module remains Γ-private.

Solving an instance
-------------------
The :mod:`repro.engine` package is the canonical entry point.  A
:class:`~repro.engine.Planner` derives requirement lists once, memoizes
every expensive derivation in a shared cache, and dispatches any algorithm
registered in the solver registry::

    from repro import Planner
    from repro.workloads import figure1_workflow

    planner = Planner(figure1_workflow(), gamma=2, kind="set")
    result = planner.solve()                         # auto-selected solver
    result = planner.solve(solver="exact", verify=True)
    result = planner.solve(solver="lp_rounding", seed=7)

``repro engine list-solvers`` (CLI) prints the registry.  The historical
free functions (``repro.optim.solve_secure_view`` and the per-algorithm
``solve_*`` functions) still work; the top-level
:func:`repro.solve_secure_view` re-export is a deprecation shim that warns
and delegates to the engine.

Layout
------
``repro.engine``
    The unified solve surface: solver registry with decorator registration,
    ``SolveRequest``/``SolveResult`` dataclasses, the ``Planner`` facade and
    the shared ``DerivationCache``.
``repro.core``
    The formal model: attributes, relations, modules, workflows, provenance
    views, possible worlds, Γ-privacy, standalone analysis, requirement
    lists, composition theorems and the Secure-View problem definition.
``repro.kernel``
    The bit-compiled privacy kernel: relations packed into integer bitmask
    tables so OUT-set counting, Γ-privacy checks and safe-subset search run
    as word-parallel bit operations.  Default backend of the core privacy
    analysis; ``backend="reference"`` keeps the brute-force oracle.
``repro.optim``
    The optimization algorithms: exact branch and bound, the Figure-3 LP
    with Algorithm-1 randomized rounding (cardinality constraints), the
    ℓ_max LP rounding (set constraints), the (γ+1) greedy for bounded data
    sharing, and the general-workflow LP with privatization.
``repro.reductions``
    The hardness constructions as executable generators (set cover, vertex
    cover, label cover, UNSAT, set disjointness, the Theorem-3 adversary).
``repro.workloads``
    Module function libraries, the paper's example workflows, random and
    "scientific-workflow-shaped" generators.
``repro.analysis``
    Experiment harness: metrics, sweeps, and text reporting.
"""

import warnings as _warnings

from .core import (
    Attribute,
    BOOLEAN,
    CardinalityRequirement,
    CardinalityRequirementList,
    Domain,
    Module,
    ProvenanceView,
    Relation,
    Schema,
    SecureViewProblem,
    SecureViewSolution,
    SetRequirement,
    SetRequirementList,
    Workflow,
    assemble_all_private_solution,
    assemble_general_solution,
    is_gamma_private_workflow,
    is_standalone_private,
    minimum_cost_safe_subset,
    standalone_privacy_level,
    workflow_privacy_level,
    is_workflow_private,
)
from .engine import (
    DerivationCache,
    Planner,
    PrivacyCertificate,
    SolveRequest,
    SolveResult,
    SolverRegistry,
    default_registry,
    register_solver,
)
from .kernel import (
    CompiledModule,
    CompiledWorkflow,
    compile_module,
    compile_workflow,
    get_default_backend,
    set_default_backend,
)

__version__ = "1.10.0"


def solve_secure_view(problem, method: str = "auto", **kwargs):
    """Deprecated shim: solve a Secure-View instance by solver name.

    Superseded by the engine — build a :class:`Planner` (or use
    ``Planner.from_problem``) and call ``solve``; it shares derivations
    across calls and returns a uniform :class:`SolveResult`.  This shim
    keeps one-off call sites working and returns the bare
    :class:`SecureViewSolution` like the historical API did.
    """
    _warnings.warn(
        "repro.solve_secure_view is deprecated; use "
        "repro.Planner.from_problem(problem).solve(solver=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Planner.from_problem(problem).solve(solver=method, **kwargs).solution


__all__ = [
    "__version__",
    "Attribute",
    "BOOLEAN",
    "Domain",
    "Schema",
    "Relation",
    "Module",
    "Workflow",
    "ProvenanceView",
    "SecureViewSolution",
    "SecureViewProblem",
    "SetRequirement",
    "SetRequirementList",
    "CardinalityRequirement",
    "CardinalityRequirementList",
    "is_standalone_private",
    "standalone_privacy_level",
    "is_workflow_private",
    "workflow_privacy_level",
    "is_gamma_private_workflow",
    "minimum_cost_safe_subset",
    "assemble_all_private_solution",
    "assemble_general_solution",
    # privacy kernel (bit-compiled analysis backend)
    "CompiledModule",
    "CompiledWorkflow",
    "compile_module",
    "compile_workflow",
    "get_default_backend",
    "set_default_backend",
    # engine (the canonical solve surface)
    "DerivationCache",
    "Planner",
    "PrivacyCertificate",
    "SolveRequest",
    "SolveResult",
    "SolverRegistry",
    "default_registry",
    "register_solver",
    # deprecated shims
    "solve_secure_view",
]
