"""Exception hierarchy for the provenance-views library.

All library-specific errors derive from :class:`ProvenanceError` so callers
can catch a single base class.  The sub-classes mirror the layers of the
library: schema/relational errors, workflow construction errors, privacy
specification errors, and solver errors.
"""

from __future__ import annotations

__all__ = [
    "ProvenanceError",
    "SchemaError",
    "DomainError",
    "FunctionalDependencyError",
    "WorkflowError",
    "WiringError",
    "CycleError",
    "PrivacyError",
    "RequirementError",
    "InfeasibleError",
    "SolverError",
]


class ProvenanceError(Exception):
    """Base class for every error raised by the provenance-views library."""


class SchemaError(ProvenanceError):
    """An operation referenced attributes that are not part of a schema."""


class DomainError(SchemaError):
    """A value fell outside the finite domain declared for an attribute."""


class FunctionalDependencyError(ProvenanceError):
    """A relation violates a declared functional dependency I -> O."""


class WorkflowError(ProvenanceError):
    """Base class for errors while constructing or executing a workflow."""


class WiringError(WorkflowError):
    """The attribute wiring of a workflow violates the rules of Section 2.3.

    The paper requires that (1) a module's input and output attribute names
    are disjoint, (2) output attribute names of distinct modules are disjoint,
    and (3) a shared name between an output and an input denotes a data edge.
    """


class CycleError(WorkflowError):
    """The module graph is not a DAG."""


class PrivacyError(ProvenanceError):
    """Base class for errors in privacy specifications or checks."""


class RequirementError(PrivacyError):
    """A requirement list is malformed (empty, out of range, wrong module)."""


class InfeasibleError(ProvenanceError):
    """A secure-view problem instance admits no feasible solution."""


class SolverError(ProvenanceError):
    """An optimization backend failed (e.g. the LP solver did not converge)."""
