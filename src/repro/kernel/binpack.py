"""Binary code-array codecs behind store format v2.

Store format v1 persists packed kernel relations as base-10 int lists
inside ``pack.json``; every reader re-parses and re-materializes a private
copy of the same hot pack.  Format v2 moves the code array into a compact
little-endian binary **sidecar file** next to the JSON document, described
by a small descriptor dict that rides where the list used to be:

* ``npy-u64le`` — a standard numpy ``.npy`` v1.0 file holding a 1-D
  ``<u8`` (little-endian ``uint64``) array, used whenever the layout fits
  :data:`NPY_MAX_BITS`.  The format is simple enough to write *and* parse
  by hand, so the no-numpy fallback reads the very same bytes with
  :mod:`struct`, and numpy builds (:func:`numpy.frombuffer`) get a
  zero-copy view straight over the mapping.
* ``fixed-le`` — raw fixed-width little-endian records
  (``ceil(total_bits / 8)`` bytes each) for layouts wider than 63 bits,
  where arbitrary-precision Python ints are the compute representation
  anyway.

Readers open sidecars through :func:`open_codes`, which memory-maps the
file when the platform allows (falling back to a plain read) and returns a
:class:`CodeBacking` — a lazy handle that validates sizes up front but
decodes nothing until asked.  Co-located processes mapping the same
sidecar share one set of page-cached, read-only pages instead of N parsed
copies; that sharing is the point of format v2.

Corruption never crashes a caller: a truncated file, a malformed header or
a descriptor/size mismatch raises :class:`ValueError` from
:func:`open_codes`, which the store degrades to a miss exactly like a
malformed JSON artifact.
"""

from __future__ import annotations

import ast
import mmap
import os
import struct
from typing import Mapping, Sequence

try:  # numpy is optional everywhere in the kernel; same guard as packing.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "NPY_ENCODING",
    "FIXED_ENCODING",
    "NPY_MAX_BITS",
    "FILE_SUFFIXES",
    "CodeBacking",
    "encode_codes",
    "open_codes",
]

NPY_ENCODING = "npy-u64le"
FIXED_ENCODING = "fixed-le"

#: Widest layout encodable as uint64 ``.npy`` (bit 63 stays clear so the
#: values are also valid *signed* 64-bit ints for every consumer).
NPY_MAX_BITS = 63

#: Sidecar file suffix per encoding (descriptors carry the full name).
FILE_SUFFIXES = {NPY_ENCODING: ".npy", FIXED_ENCODING: ".bin"}

_NPY_MAGIC = b"\x93NUMPY"


def _npy_header(rows: int) -> bytes:
    """A numpy ``.npy`` v1.0 header for a 1-D little-endian uint64 array.

    Hand-rolled so writing needs no numpy; the layout follows the NEP-1
    format spec (magic, version, little-endian uint16 header length, then
    a Python-literal dict padded with spaces to a 64-byte boundary and
    terminated by a newline).
    """
    descr = (
        "{'descr': '<u8', 'fortran_order': False, 'shape': (%d,), }" % int(rows)
    ).encode("latin1")
    base = len(_NPY_MAGIC) + 2 + 2  # magic + version + header-length field
    padding = (64 - (base + len(descr) + 1) % 64) % 64
    header = descr + b" " * padding + b"\n"
    return _NPY_MAGIC + bytes((1, 0)) + struct.pack("<H", len(header)) + header


def _parse_npy_header(buffer) -> tuple[int, int]:
    """``(rows, data_offset)`` of a 1-D ``<u8`` C-order ``.npy`` buffer.

    Raises :class:`ValueError` for anything that is not exactly the shape
    this module writes — other dtypes, orders or dimensions are corruption
    as far as the store is concerned.
    """
    view = bytes(buffer[: len(_NPY_MAGIC) + 4])
    if len(view) < len(_NPY_MAGIC) + 4 or not view.startswith(_NPY_MAGIC):
        raise ValueError("not a .npy file")
    major = view[len(_NPY_MAGIC)]
    if major != 1:
        raise ValueError(f"unsupported .npy version {major}")
    (header_len,) = struct.unpack_from("<H", view, len(_NPY_MAGIC) + 2)
    offset = len(_NPY_MAGIC) + 4 + header_len
    header_bytes = bytes(buffer[len(_NPY_MAGIC) + 4 : offset])
    if len(header_bytes) != header_len:
        raise ValueError("truncated .npy header")
    try:
        header = ast.literal_eval(header_bytes.decode("latin1"))
    except (ValueError, SyntaxError) as exc:
        raise ValueError("malformed .npy header") from exc
    if not isinstance(header, dict):
        raise ValueError("malformed .npy header")
    shape = header.get("shape")
    if (
        header.get("descr") != "<u8"
        or header.get("fortran_order") is not False
        or not isinstance(shape, tuple)
        or len(shape) != 1
    ):
        raise ValueError("unexpected .npy dtype or shape")
    return int(shape[0]), offset


def encode_codes(codes: Sequence[int], total_bits: int) -> tuple[dict, bytes]:
    """Encode a code array; ``(descriptor, payload_bytes)``.

    The descriptor is JSON-safe and, once a ``"file"`` name is attached by
    the writer, is exactly what :func:`open_codes` consumes.  Encoding is
    chosen from ``total_bits`` alone so migration (which only has the
    stored layout description, not a live schema) picks the same bytes a
    fresh write would.
    """
    rows = len(codes)
    if total_bits < 0:
        raise ValueError("total_bits must be non-negative")
    if total_bits <= NPY_MAX_BITS:
        payload = _npy_header(rows) + struct.pack(f"<{rows}Q", *codes)
        descriptor = {"encoding": NPY_ENCODING, "rows": rows, "item_bytes": 8}
        return descriptor, payload
    item_bytes = max(1, (total_bits + 7) // 8)
    payload = b"".join(int(code).to_bytes(item_bytes, "little") for code in codes)
    descriptor = {"encoding": FIXED_ENCODING, "rows": rows, "item_bytes": item_bytes}
    return descriptor, payload


class CodeBacking:
    """A validated, lazily-decoded handle on one binary code sidecar.

    Holds the raw buffer (an ``mmap`` when the platform granted one, plain
    ``bytes`` otherwise) and decodes on demand: :meth:`materialize` yields
    the exact Python ints the JSON list would have carried, while
    :meth:`array` returns a zero-copy numpy ``uint64`` view for the
    vectorized kernel paths — mapped pages stay shared and read-only.
    """

    __slots__ = ("encoding", "rows", "item_bytes", "offset", "nbytes", "mapped", "_buf")

    def __init__(
        self,
        encoding: str,
        rows: int,
        item_bytes: int,
        offset: int,
        buf,
        mapped: bool,
    ) -> None:
        self.encoding = encoding
        self.rows = rows
        self.item_bytes = item_bytes
        self.offset = offset
        self.nbytes = len(buf)
        self.mapped = mapped
        self._buf = buf

    def materialize(self) -> list[int]:
        """Decode every code to a plain Python int (row order preserved)."""
        if self.encoding == NPY_ENCODING:
            return list(
                struct.unpack_from(f"<{self.rows}Q", self._buf, self.offset)
            )
        width = self.item_bytes
        view = memoryview(self._buf)[self.offset :]
        return [
            int.from_bytes(view[start : start + width], "little")
            for start in range(0, self.rows * width, width)
        ]

    def array(self):
        """Zero-copy ``uint64`` view (``None`` off the numpy-eligible path)."""
        if _np is None or self.encoding != NPY_ENCODING:
            return None
        return _np.frombuffer(
            self._buf, dtype="<u8", count=self.rows, offset=self.offset
        )


def open_codes(
    path: str | os.PathLike, descriptor: Mapping[str, object], total_bits: int
) -> CodeBacking:
    """Open and validate one sidecar; raises :class:`ValueError` on skew.

    Validation is structural and cheap — encoding known, descriptor
    consistent with the layout's ``total_bits``, file size exactly what
    ``rows`` promises — so corruption (truncation, a swapped file, a
    drifted layout) surfaces here, before any code is decoded, and the
    store turns it into a miss.
    """
    encoding = descriptor.get("encoding")
    if encoding not in FILE_SUFFIXES:
        raise ValueError(f"unknown code encoding {encoding!r}")
    rows = int(descriptor.get("rows", -1))
    item_bytes = int(descriptor.get("item_bytes", 0))
    if rows < 0:
        raise ValueError("negative row count in code descriptor")
    expected_item = 8 if encoding == NPY_ENCODING else max(1, (total_bits + 7) // 8)
    if item_bytes != expected_item:
        raise ValueError(
            f"descriptor item width {item_bytes} does not match layout "
            f"({expected_item} bytes)"
        )
    if encoding == NPY_ENCODING and total_bits > NPY_MAX_BITS:
        raise ValueError("uint64 encoding for a layout wider than 63 bits")
    try:
        with open(path, "rb") as handle:
            mapped = True
            try:
                buf = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):  # zero-length file, or no mmap
                mapped = False
                handle.seek(0)
                buf = handle.read()
    except OSError as exc:
        raise ValueError(f"unreadable code sidecar: {exc}") from exc
    if encoding == NPY_ENCODING:
        stored_rows, offset = _parse_npy_header(buf)
        if stored_rows != rows:
            raise ValueError(
                f"sidecar holds {stored_rows} rows, descriptor says {rows}"
            )
    else:
        offset = 0
    if len(buf) != offset + rows * item_bytes:
        raise ValueError(
            f"sidecar size {len(buf)} does not match {rows} rows of "
            f"{item_bytes} bytes"
        )
    return CodeBacking(encoding, rows, item_bytes, offset, buf, mapped)
