"""Compiled standalone-privacy kernel for a single module.

A :class:`CompiledModule` packs a module's relation once (via
:class:`~repro.kernel.packing.BitLayout`) and then answers every standalone
privacy question — OUT-set counts, Γ-privacy levels, safe/minimal hidden
subsets, cardinality pairs — with word-parallel bit operations instead of
per-tuple dict/frozenset churn.  The counting condition it implements is
the one of Appendix A.4 (also used by the reference path in
:mod:`repro.core.privacy`):

    ``|OUT_x| = D_x * prod_{a in O \\ V} |Delta_a|``

where ``D_x`` is the number of distinct *visible-output* values among the
executions sharing ``x``'s *visible-input* value.  On packed codes both
projections are single AND-masks, so ``D_x`` reduces to distinct-counting
masked integers — on numpy-eligible relations one ``np.unique`` call.

Privacy levels are Γ-independent, so they are memoized per visible bitmask:
a subset sweep (requirement derivation probes up to ``2^k`` hidden sets)
evaluates each distinct visible mask once, and safety monotonicity
(Proposition 1) prunes every superset of an already-found minimal safe set
without touching the relation at all.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable

try:
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

from ..exceptions import PrivacyError
from .packing import BitLayout, PackedRelation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.attributes import Value
    from ..core.module import Module
    from ..core.relation import Relation

__all__ = ["CompiledModule"]


def _check_gamma(gamma: int) -> None:
    if gamma < 1:
        raise PrivacyError("the privacy requirement Γ must be at least 1")


class CompiledModule:
    """Bit-compiled form of one module's (possibly restricted) relation."""

    __slots__ = (
        "module",
        "relation",
        "layout",
        "packed",
        "input_bits",
        "output_bits",
        "all_bits",
        "_range_size",
        "_level_cache",
    )

    def __init__(self, module: "Module", relation: "Relation | None" = None) -> None:
        self.module = module
        self.relation = relation
        rel = relation if relation is not None else module.relation()
        self.layout = BitLayout(module.schema)
        self.packed = PackedRelation.from_relation(rel, self.layout)
        self.input_bits = self.layout.mask_for(module.input_names)
        self.output_bits = self.layout.mask_for(module.output_names)
        self.all_bits = self.input_bits | self.output_bits
        self._range_size = module.range_size()
        #: visible attribute bitmask -> privacy level (Γ-independent).
        self._level_cache: dict[int, int] = {}

    # -- stable serialization --------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe form of the packed module tables for the derivation store.

        Besides the packed relation (which saves re-tabulating the module's
        function over its whole input domain), the Γ-independent privacy
        level memos accumulated so far are exported: a requirement
        derivation sweep probes up to ``2^k`` visible masks, so a store-
        round-tripped module answers most of a *different* Γ's sweep from
        the memo without touching the relation at all.
        """
        return {
            "pack": self.packed.to_dict(),
            "levels": sorted(
                [int(mask), int(level)] for mask, level in self._level_cache.items()
            ),
        }

    @classmethod
    def from_payload(
        cls, module: "Module", payload: dict, relation: "Relation | None" = None
    ) -> "CompiledModule":
        """Rebuild a compiled module from :meth:`to_payload` output.

        ``module`` must be the live module the payload was compiled from
        (the store guarantees this by keying payloads on the module's
        content fingerprint).  The packed codes are validated structurally
        against the schema's layout, and memo entries are bounds-checked;
        any mismatch raises so callers fall back to recompiling.  Loading
        never materializes ``module.relation()`` — skipping the domain
        enumeration is part of the saved work.
        """
        compiled = cls.__new__(cls)
        compiled.module = module
        compiled.relation = relation
        compiled.layout = BitLayout(module.schema)
        compiled.packed = PackedRelation.from_dict(compiled.layout, payload["pack"])
        compiled.input_bits = compiled.layout.mask_for(module.input_names)
        compiled.output_bits = compiled.layout.mask_for(module.output_names)
        compiled.all_bits = compiled.input_bits | compiled.output_bits
        compiled._range_size = module.range_size()
        all_bits = compiled.layout.all_bits
        levels: dict[int, int] = {}
        for entry in payload.get("levels", ()):
            mask, level = entry
            mask = int(mask)
            level = int(level)
            if not 0 <= mask <= all_bits or level < 0:
                raise ValueError("stored privacy-level memo entry out of range")
            levels[mask] = level
        compiled._level_cache = levels
        return compiled

    # -- bitmask helpers ------------------------------------------------------
    def visible_bits(self, visible: Iterable[str]) -> int:
        """Bitmask of the visible attributes (unknown names ignored)."""
        return self.layout.mask_for(visible)

    def _hidden_output_completions(self, visible_bits: int) -> int:
        """``prod_{a in O \\ V} |Delta_a|`` from the visible bitmask."""
        size = 1
        field_masks = self.layout.field_masks
        for name in self.module.output_names:
            if not visible_bits & field_masks[name]:
                size *= self.layout.domain_size(name)
        return size

    def _distinct_pair_groups(self, visible_bits: int) -> dict[int, int]:
        """Per visible-input group, the number of distinct visible outputs.

        Keys are packed visible-input codes; an empty dict means the
        relation is empty.  This is the kernel's one pass over the data.
        """
        vin = visible_bits & self.input_bits
        codes = self.packed.codes
        if not codes:
            return {}
        if self.packed.use_numpy:
            arr = self.packed.array
            pairs = _np.unique(arr & _np.uint64(visible_bits & self.all_bits))
            groups, counts = _np.unique(pairs & _np.uint64(vin), return_counts=True)
            return {int(g): int(c) for g, c in zip(groups, counts)}
        pairs = {code & visible_bits for code in codes}
        counts: dict[int, int] = {}
        for pair in pairs:
            group = pair & vin
            counts[group] = counts.get(group, 0) + 1
        return counts

    # -- privacy levels -------------------------------------------------------
    def privacy_level_bits(self, visible_bits: int) -> int:
        """Largest Γ for which the module is private w.r.t. the bitmask."""
        visible_bits &= self.all_bits
        cached = self._level_cache.get(visible_bits)
        if cached is not None:
            return cached
        groups = self._distinct_pair_groups(visible_bits)
        if not groups:
            level = self._range_size
        else:
            level = min(groups.values()) * self._hidden_output_completions(
                visible_bits
            )
        self._level_cache[visible_bits] = level
        return level

    def privacy_level(self, visible: Iterable[str]) -> int:
        """``min_x |OUT_x|``; the module's standalone privacy level."""
        return self.privacy_level_bits(self.visible_bits(visible))

    def is_private(self, visible: Iterable[str], gamma: int) -> bool:
        _check_gamma(gamma)
        return self.privacy_level(visible) >= gamma

    def is_safe_hidden_bits(self, hidden_bits: int, gamma: int) -> bool:
        return self.privacy_level_bits(self.all_bits & ~hidden_bits) >= gamma

    def out_counts(
        self, visible: Iterable[str]
    ) -> dict[tuple["Value", ...], int]:
        """``|OUT_x|`` per visible-input value, as the reference check returns."""
        visible_set = set(visible)
        vin_names = [name for name in self.module.input_names if name in visible_set]
        visible_bits = self.visible_bits(visible_set)
        completions = self._hidden_output_completions(visible_bits)
        groups = self._distinct_pair_groups(visible_bits)
        unpack = self.layout.unpack
        return {
            unpack(group, vin_names): count * completions
            for group, count in groups.items()
        }

    # -- safe-subset sweeps ---------------------------------------------------
    def enumerate_safe_hidden_subsets(
        self, gamma: int, hidable: Iterable[str] | None = None
    ) -> list[frozenset[str]]:
        """All safe hidden subsets of the hidable attributes, sorted.

        Enumerates subsets by size; any candidate whose bitmask covers an
        already-found minimal safe mask is safe by monotonicity and skips
        the relation pass entirely.
        """
        _check_gamma(gamma)
        names = (
            tuple(hidable) if hidable is not None else self.module.attribute_names
        )
        masks = [self.layout.field_masks.get(name, 0) for name in names]
        safe: list[frozenset[str]] = []
        minimal_masks: list[int] = []
        for size in range(len(names) + 1):
            for combo in itertools.combinations(range(len(names)), size):
                bits = 0
                for index in combo:
                    bits |= masks[index]
                if any(m & bits == m for m in minimal_masks):
                    safe.append(frozenset(names[index] for index in combo))
                elif self.is_safe_hidden_bits(bits, gamma):
                    safe.append(frozenset(names[index] for index in combo))
                    minimal_masks.append(bits)
        return sorted(safe, key=lambda s: (len(s), tuple(sorted(s))))

    def minimal_safe_hidden_subsets(
        self, gamma: int, hidable: Iterable[str] | None = None
    ) -> list[frozenset[str]]:
        """The inclusion-minimal safe hidden subsets (an antichain)."""
        minimal: list[frozenset[str]] = []
        for candidate in self.enumerate_safe_hidden_subsets(gamma, hidable=hidable):
            if not any(other <= candidate for other in minimal):
                minimal.append(candidate)
        return minimal

    def safe_cardinality_pairs(self, gamma: int) -> list[tuple[int, int]]:
        """All (α, β) with *every* α-input/β-output hidden choice safe."""
        _check_gamma(gamma)
        in_masks = [self.layout.field_masks[n] for n in self.module.input_names]
        out_masks = [self.layout.field_masks[n] for n in self.module.output_names]
        valid: list[tuple[int, int]] = []
        for alpha in range(len(in_masks) + 1):
            for beta in range(len(out_masks) + 1):
                ok = True
                for ins in itertools.combinations(in_masks, alpha):
                    for outs in itertools.combinations(out_masks, beta):
                        bits = 0
                        for mask in ins:
                            bits |= mask
                        for mask in outs:
                            bits |= mask
                        if not self.is_safe_hidden_bits(bits, gamma):
                            ok = False
                            break
                    if not ok:
                        break
                if ok:
                    valid.append((alpha, beta))
        return valid
