"""Compiled standalone-privacy kernel for a single module.

A :class:`CompiledModule` packs a module's relation once (via
:class:`~repro.kernel.packing.BitLayout`) and then answers every standalone
privacy question — OUT-set counts, Γ-privacy levels, safe/minimal hidden
subsets, cardinality pairs — with word-parallel bit operations instead of
per-tuple dict/frozenset churn.  The counting condition it implements is
the one of Appendix A.4 (also used by the reference path in
:mod:`repro.core.privacy`):

    ``|OUT_x| = D_x * prod_{a in O \\ V} |Delta_a|``

where ``D_x`` is the number of distinct *visible-output* values among the
executions sharing ``x``'s *visible-input* value.  On packed codes both
projections are single AND-masks, so ``D_x`` reduces to distinct-counting
masked integers — on numpy-eligible relations one ``np.unique`` call.

Privacy levels are Γ-independent, so they are memoized per visible bitmask:
a subset sweep (requirement derivation probes up to ``2^k`` hidden sets)
evaluates each distinct visible mask once, and safety monotonicity
(Proposition 1) prunes every superset of an already-found minimal safe set
without touching the relation at all.

Since PR 8 the sweep itself is **batched**: instead of one ``np.unique``
pass over the packed rows per candidate mask,
:meth:`CompiledModule.privacy_levels_batch` broadcasts
``codes[:, None] & masks[None, :]`` (tiled to
:data:`~repro.kernel.packing.BATCH_MEMORY_BUDGET`), sorts every projected
column in one C-level call, and recovers per-group distinct-pair counts by
run-length segmentation — so an exponential safe-subset sweep costs
``O(batches)`` relation passes instead of ``O(masks)``.  The pure-int
scalar path remains the automatic fallback for no-numpy installs, >63-bit
layouts and small relations (the :data:`~repro.kernel.packing.NUMPY_MIN_ROWS`
family of heuristics), and both paths share one privacy-level memo, so
interleaving them never recomputes or diverges.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Sequence

try:
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

from ..exceptions import PrivacyError
from .packing import (
    BATCH_MEMORY_BUDGET,
    BATCH_MIN_MASKS,
    BitLayout,
    PackedRelation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.attributes import Value
    from ..core.module import Module
    from ..core.relation import Relation

__all__ = ["CompiledModule", "sweep_batching", "batching_enabled"]

#: Process-wide switch for the batched sweep path (scalar fallback when
#: off).  Benchmarks and differential tests flip it via :func:`sweep_batching`
#: to time and cross-check the two paths; production code never needs to.
_BATCHING_ENABLED = True


def batching_enabled() -> bool:
    """Whether the batched mask-sweep path is currently enabled."""
    return _BATCHING_ENABLED


@contextmanager
def sweep_batching(enabled: bool):
    """Temporarily force the batched sweep path on or off (tests/benchmarks)."""
    global _BATCHING_ENABLED
    previous = _BATCHING_ENABLED
    _BATCHING_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _BATCHING_ENABLED = previous


def _check_gamma(gamma: int) -> None:
    if gamma < 1:
        raise PrivacyError("the privacy requirement Γ must be at least 1")


class CompiledModule:
    """Bit-compiled form of one module's (possibly restricted) relation."""

    __slots__ = (
        "module",
        "relation",
        "layout",
        "packed",
        "input_bits",
        "output_bits",
        "all_bits",
        "_range_size",
        "_level_cache",
        "sweep_stats",
    )

    def __init__(self, module: "Module", relation: "Relation | None" = None) -> None:
        self.module = module
        self.relation = relation
        rel = relation if relation is not None else module.relation()
        self.layout = BitLayout(module.schema)
        self.packed = PackedRelation.from_relation(rel, self.layout)
        self.input_bits = self.layout.mask_for(module.input_names)
        self.output_bits = self.layout.mask_for(module.output_names)
        self.all_bits = self.input_bits | self.output_bits
        self._range_size = module.range_size()
        #: visible attribute bitmask -> privacy level (Γ-independent).
        self._level_cache: dict[int, int] = {}
        #: Relation-pass accounting for the sweep paths: ``scalar_masks``
        #: counts masks resolved by per-mask passes, ``batched_masks`` masks
        #: resolved by vectorized passes, and ``batched_passes`` how many
        #: such passes ran (each covering a whole tile of masks).
        self.sweep_stats: dict[str, int] = {
            "scalar_masks": 0,
            "batched_masks": 0,
            "batched_passes": 0,
        }

    # -- stable serialization --------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe form of the packed module tables for the derivation store.

        Besides the packed relation (which saves re-tabulating the module's
        function over its whole input domain), the Γ-independent privacy
        level memos accumulated so far are exported: a requirement
        derivation sweep probes up to ``2^k`` visible masks, so a store-
        round-tripped module answers most of a *different* Γ's sweep from
        the memo without touching the relation at all.
        """
        return {
            "pack": self.packed.to_dict(),
            "levels": sorted(
                [int(mask), int(level)] for mask, level in self._level_cache.items()
            ),
        }

    @classmethod
    def from_payload(
        cls,
        module: "Module",
        payload: dict,
        relation: "Relation | None" = None,
        base_dir: "str | None" = None,
    ) -> "CompiledModule":
        """Rebuild a compiled module from :meth:`to_payload` output.

        ``module`` must be the live module the payload was compiled from
        (the store guarantees this by keying payloads on the module's
        content fingerprint).  The packed codes are validated structurally
        against the schema's layout, and memo entries are bounds-checked;
        any mismatch raises so callers fall back to recompiling.  Loading
        never materializes ``module.relation()`` — skipping the domain
        enumeration is part of the saved work.
        """
        compiled = cls.__new__(cls)
        compiled.module = module
        compiled.relation = relation
        compiled.layout = BitLayout(module.schema)
        compiled.packed = PackedRelation.from_dict(
            compiled.layout, payload["pack"], base_dir=base_dir
        )
        compiled.input_bits = compiled.layout.mask_for(module.input_names)
        compiled.output_bits = compiled.layout.mask_for(module.output_names)
        compiled.all_bits = compiled.input_bits | compiled.output_bits
        compiled._range_size = module.range_size()
        all_bits = compiled.layout.all_bits
        levels: dict[int, int] = {}
        for entry in payload.get("levels", ()):
            mask, level = entry
            mask = int(mask)
            level = int(level)
            if not 0 <= mask <= all_bits or level < 0:
                raise ValueError("stored privacy-level memo entry out of range")
            levels[mask] = level
        compiled._level_cache = levels
        compiled.sweep_stats = {
            "scalar_masks": 0,
            "batched_masks": 0,
            "batched_passes": 0,
        }
        return compiled

    # -- bitmask helpers ------------------------------------------------------
    def visible_bits(self, visible: Iterable[str]) -> int:
        """Bitmask of the visible attributes (unknown names ignored)."""
        return self.layout.mask_for(visible)

    def _hidden_output_completions(self, visible_bits: int) -> int:
        """``prod_{a in O \\ V} |Delta_a|`` from the visible bitmask."""
        size = 1
        field_masks = self.layout.field_masks
        for name in self.module.output_names:
            if not visible_bits & field_masks[name]:
                size *= self.layout.domain_size(name)
        return size

    def _distinct_pair_groups(self, visible_bits: int) -> dict[int, int]:
        """Per visible-input group, the number of distinct visible outputs.

        Keys are packed visible-input codes; an empty dict means the
        relation is empty.  This is the kernel's one pass over the data.
        """
        vin = visible_bits & self.input_bits
        if len(self.packed) == 0:
            return {}
        if self.packed.use_numpy:
            # The numpy path never materializes Python-int codes: on an
            # mmap-backed pack ``array`` is a zero-copy view of the sidecar.
            arr = self.packed.array
            pairs = _np.unique(arr & _np.uint64(visible_bits & self.all_bits))
            groups, counts = _np.unique(pairs & _np.uint64(vin), return_counts=True)
            return {int(g): int(c) for g, c in zip(groups, counts)}
        pairs = {code & visible_bits for code in self.packed.codes}
        counts: dict[int, int] = {}
        for pair in pairs:
            group = pair & vin
            counts[group] = counts.get(group, 0) + 1
        return counts

    # -- privacy levels -------------------------------------------------------
    def privacy_level_bits(self, visible_bits: int) -> int:
        """Largest Γ for which the module is private w.r.t. the bitmask."""
        visible_bits &= self.all_bits
        cached = self._level_cache.get(visible_bits)
        if cached is not None:
            return cached
        groups = self._distinct_pair_groups(visible_bits)
        if not groups:
            level = self._range_size
        else:
            level = min(groups.values()) * self._hidden_output_completions(
                visible_bits
            )
        self._level_cache[visible_bits] = level
        self.sweep_stats["scalar_masks"] += 1
        return level

    def _batch_eligible(self, n_masks: int) -> bool:
        """Does the vectorized multi-mask pass apply to this many candidates?

        The same selection family as :attr:`PackedRelation.use_numpy`: numpy
        present, codes within the uint64 mirror, relation big enough for
        vectorization to pay off — plus enough uncached masks to amortize
        the broadcast setup over.
        """
        return (
            _BATCHING_ENABLED
            and n_masks >= BATCH_MIN_MASKS
            and self.packed.use_numpy
            and len(self.packed) > 0
        )

    def _compute_levels_batch(self, masks: Sequence[int]) -> None:
        """One vectorized pass (per memory tile) filling the level memo.

        ``masks`` are distinct, normalized, uncached visible bitmasks.  The
        pass broadcasts ``codes[:, None] & masks[None, :]``, sorts each
        projected column (equal visible pairs become contiguous runs), then
        segments the per-column distinct pairs by their visible-input part
        with one lexicographic sort — ``min_x D_x`` for every mask without a
        single per-mask relation scan.
        """
        arr = self.packed.array
        n_rows = len(self.packed)
        vis = _np.fromiter(masks, dtype=_np.uint64, count=len(masks))
        vin = vis & _np.uint64(self.input_bits)
        tile = max(1, BATCH_MEMORY_BUDGET // (8 * n_rows))
        min_counts = _np.empty(len(masks), dtype=_np.int64)
        for start in range(0, len(masks), tile):
            vis_tile = vis[start : start + tile]
            vin_tile = vin[start : start + tile]
            # One row per mask: each sort then runs over contiguous memory.
            projected = vis_tile[:, None] & arr[None, :]
            projected.sort(axis=1)
            # Distinct (visible-in, visible-out) pairs are the run starts of
            # each sorted row.
            starts = _np.empty(projected.shape, dtype=bool)
            starts[:, 0] = True
            _np.not_equal(projected[:, 1:], projected[:, :-1], out=starts[:, 1:])
            distinct_per_mask = starts.sum(axis=1)
            # Flatten the distinct pairs mask-major and tag each with its
            # mask index and visible-input group.
            pairs = projected[starts]
            mask_ids = _np.repeat(
                _np.arange(len(vis_tile), dtype=_np.int64), distinct_per_mask
            )
            groups = pairs & vin_tile[mask_ids]
            order = _np.lexsort((groups, mask_ids))
            groups = groups[order]
            mask_ids = mask_ids[order]
            # Run-length segment (mask, group) runs; their lengths are D_x.
            run_starts = _np.empty(len(groups), dtype=bool)
            run_starts[0] = True
            run_starts[1:] = (groups[1:] != groups[:-1]) | (
                mask_ids[1:] != mask_ids[:-1]
            )
            run_index = _np.flatnonzero(run_starts)
            run_sizes = _np.diff(_np.append(run_index, len(groups)))
            run_masks = mask_ids[run_index]
            first_run = _np.empty(len(run_masks), dtype=bool)
            first_run[0] = True
            first_run[1:] = run_masks[1:] != run_masks[:-1]
            min_counts[start : start + len(vis_tile)] = _np.minimum.reduceat(
                run_sizes, _np.flatnonzero(first_run)
            )
            self.sweep_stats["batched_passes"] += 1
        # The final multiply runs on Python ints: completions can reach the
        # full hidden-output domain product, which must not wrap in int64.
        output_fields = [
            (self.layout.field_masks[name], self.layout.domain_size(name))
            for name in self.module.output_names
        ]
        cache = self._level_cache
        for index, mask in enumerate(masks):
            completions = 1
            for field_mask, size in output_fields:
                if not mask & field_mask:
                    completions *= size
            cache[mask] = int(min_counts[index]) * completions
        self.sweep_stats["batched_masks"] += len(masks)

    def privacy_levels_batch(self, masks: Iterable[int]) -> list[int]:
        """Privacy levels for many visible bitmasks in one pass per tile.

        Semantically ``[self.privacy_level_bits(m) for m in masks]`` — the
        result order matches the input order, duplicate and already-memoized
        masks are filtered before dispatch, and every computed level lands
        in the same memo the scalar path uses (so ``to_payload()`` exports
        and store round-trips are path-independent).  Falls back to the
        scalar path automatically when the relation is not numpy-eligible
        (no numpy, >63-bit layout, few rows) or the batch is too small.
        """
        all_bits = self.all_bits
        normalized = [mask & all_bits for mask in masks]
        cache = self._level_cache
        pending: list[int] = []
        seen: set[int] = set()
        for mask in normalized:
            if mask not in cache and mask not in seen:
                seen.add(mask)
                pending.append(mask)
        if pending:
            if self._batch_eligible(len(pending)):
                self._compute_levels_batch(pending)
            else:
                for mask in pending:
                    self.privacy_level_bits(mask)
        return [cache[mask] for mask in normalized]

    def privacy_level(self, visible: Iterable[str]) -> int:
        """``min_x |OUT_x|``; the module's standalone privacy level."""
        return self.privacy_level_bits(self.visible_bits(visible))

    def is_private(self, visible: Iterable[str], gamma: int) -> bool:
        _check_gamma(gamma)
        return self.privacy_level(visible) >= gamma

    def is_safe_hidden_bits(self, hidden_bits: int, gamma: int) -> bool:
        return self.privacy_level_bits(self.all_bits & ~hidden_bits) >= gamma

    def is_safe_hidden_batch(
        self, hidden_masks: Sequence[int], gamma: int
    ) -> list[bool]:
        """Batched safety verdicts for many hidden bitmasks (one per input)."""
        _check_gamma(gamma)
        all_bits = self.all_bits
        levels = self.privacy_levels_batch(
            [all_bits & ~hidden for hidden in hidden_masks]
        )
        return [level >= gamma for level in levels]

    def out_counts(
        self, visible: Iterable[str]
    ) -> dict[tuple["Value", ...], int]:
        """``|OUT_x|`` per visible-input value, as the reference check returns."""
        visible_set = set(visible)
        vin_names = [name for name in self.module.input_names if name in visible_set]
        visible_bits = self.visible_bits(visible_set)
        completions = self._hidden_output_completions(visible_bits)
        groups = self._distinct_pair_groups(visible_bits)
        unpack = self.layout.unpack
        return {
            unpack(group, vin_names): count * completions
            for group, count in groups.items()
        }

    # -- safe-subset sweeps ---------------------------------------------------
    def enumerate_safe_hidden_subsets(
        self, gamma: int, hidable: Iterable[str] | None = None
    ) -> list[frozenset[str]]:
        """All safe hidden subsets of the hidable attributes, sorted.

        Sweeps size by size, dispatching each level's unpruned candidates as
        one batched evaluation: candidates covering a minimal safe mask from
        an earlier level are safe by monotonicity (Proposition 1) and never
        reach the relation; the rest share one vectorized pass (or the
        scalar fallback) through :meth:`is_safe_hidden_batch`.  Verdicts —
        and therefore the returned list — are identical to the one-mask-at-
        a-time sweep, which only differed in evaluating same-size supersets
        of freshly-found minimal masks that monotonicity already decides.
        """
        _check_gamma(gamma)
        names = (
            tuple(hidable) if hidable is not None else self.module.attribute_names
        )
        masks = [self.layout.field_masks.get(name, 0) for name in names]
        safe: list[frozenset[str]] = []
        minimal_masks: list[int] = []
        for size in range(len(names) + 1):
            level: list[tuple[tuple[int, ...], int, bool]] = []
            batch: list[int] = []
            for combo in itertools.combinations(range(len(names)), size):
                bits = 0
                for index in combo:
                    bits |= masks[index]
                pruned = any(m & bits == m for m in minimal_masks)
                level.append((combo, bits, pruned))
                if not pruned:
                    batch.append(bits)
            verdicts: dict[int, bool] = (
                dict(zip(batch, self.is_safe_hidden_batch(batch, gamma)))
                if batch
                else {}
            )
            for combo, bits, pruned in level:
                if pruned:
                    safe.append(frozenset(names[index] for index in combo))
                elif verdicts[bits]:
                    safe.append(frozenset(names[index] for index in combo))
                    if not any(m & bits == m for m in minimal_masks):
                        minimal_masks.append(bits)
        return sorted(safe, key=lambda s: (len(s), tuple(sorted(s))))

    def minimal_safe_hidden_subsets(
        self, gamma: int, hidable: Iterable[str] | None = None
    ) -> list[frozenset[str]]:
        """The inclusion-minimal safe hidden subsets (an antichain)."""
        minimal: list[frozenset[str]] = []
        for candidate in self.enumerate_safe_hidden_subsets(gamma, hidable=hidable):
            if not any(other <= candidate for other in minimal):
                minimal.append(candidate)
        return minimal

    def _all_hidden_choices_safe(
        self,
        in_masks: Sequence[int],
        out_masks: Sequence[int],
        alpha: int,
        beta: int,
        gamma: int,
    ) -> bool:
        """Is *every* α-input/β-output hidden choice safe?  Batched check."""
        candidates: list[int] = []
        for ins in itertools.combinations(in_masks, alpha):
            base = 0
            for mask in ins:
                base |= mask
            for outs in itertools.combinations(out_masks, beta):
                bits = base
                for mask in outs:
                    bits |= mask
                candidates.append(bits)
        # Chunked so an early unsafe choice short-circuits the remaining
        # combinations (matching the scalar loop's early exit) while each
        # chunk still amortizes one vectorized pass.
        chunk = 512
        for start in range(0, len(candidates), chunk):
            if not all(
                self.is_safe_hidden_batch(candidates[start : start + chunk], gamma)
            ):
                return False
        return True

    def safe_cardinality_pairs(self, gamma: int) -> list[tuple[int, int]]:
        """All (α, β) with *every* α-input/β-output hidden choice safe.

        Safety of a pair is monotone in both coordinates (an (α+1, β) choice
        hides a superset of some (α, β) choice, so Proposition 1 applies):
        the safe region is upward closed and fully described by the frontier
        ``β*(α) = min{β : (α, β) safe}``, which is non-increasing in α.
        Each α therefore only probes β below the previous frontier — once a
        combination is known unsafe (or safe), every dominated (or
        dominating) pair is decided without re-testing its choices — and the
        choices of one probe are evaluated as a batch.
        """
        _check_gamma(gamma)
        in_masks = [self.layout.field_masks[n] for n in self.module.input_names]
        out_masks = [self.layout.field_masks[n] for n in self.module.output_names]
        n_out = len(out_masks)
        valid: list[tuple[int, int]] = []
        # β*(previous α); n_out + 1 encodes "no safe β at all".
        frontier = n_out + 1
        for alpha in range(len(in_masks) + 1):
            beta_star = frontier
            for beta in range(min(frontier, n_out + 1)):
                if self._all_hidden_choices_safe(
                    in_masks, out_masks, alpha, beta, gamma
                ):
                    beta_star = beta
                    break
            valid.extend((alpha, beta) for beta in range(beta_star, n_out + 1))
            frontier = beta_star
        return valid
