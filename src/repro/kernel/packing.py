"""Bit-packed relations: the kernel's core data representation.

The brute-force layers in :mod:`repro.core` manipulate rows as dicts and
subsets as frozensets of attribute names.  That representation is flexible
but allocation-heavy: every projection, group-by and OUT-set count churns
through per-tuple dict and tuple objects.  The kernel instead *compiles* a
schema into a :class:`BitLayout` — each attribute gets a fixed bit field
wide enough for its domain — so that

* a row becomes one machine integer (``value_index << offset`` per field),
* an attribute subset becomes one integer bitmask,
* a projection becomes a single ``row & mask``, and
* distinct-counting and group-bys become set/array operations over ints.

Packed codes fitting in 63 bits can additionally be mirrored into a numpy
``uint64`` array for word-parallel distinct counting; wider schemas fall
back to Python's arbitrary-precision ints, so nothing in the kernel caps
the number of attributes.

This module deliberately imports nothing from :mod:`repro.core` at runtime
(only for type checking), which keeps the kernel importable from the core
hot paths without circular imports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

try:  # numpy ships transitively with scipy; treat it as optional anyway.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.attributes import Schema, Value
    from ..core.relation import Relation

__all__ = [
    "HAVE_NUMPY",
    "NUMPY_MAX_BITS",
    "NUMPY_MIN_ROWS",
    "BATCH_MIN_MASKS",
    "BATCH_MEMORY_BUDGET",
    "BitLayout",
    "PackedRelation",
]

HAVE_NUMPY = _np is not None

#: Widest packed row still eligible for the uint64 numpy mirror.
NUMPY_MAX_BITS = 63

#: Below this row count plain Python int ops beat the numpy call overhead.
NUMPY_MIN_ROWS = 192

#: Below this many uncached candidate masks a batched sweep pass gains
#: nothing over per-mask ``np.unique`` calls (same heuristic family as
#: :data:`NUMPY_MIN_ROWS`: amortize the vectorization setup or skip it).
BATCH_MIN_MASKS = 4

#: Memory budget (bytes) for one broadcast ``codes[:, None] & masks[None, :]``
#: tile of a batched sweep.  Batches larger than ``budget // (8 * rows)``
#: masks are split into multiple passes over the packed relation.
BATCH_MEMORY_BUDGET = 1 << 24


class BitLayout:
    """A fixed bit-field layout for the attributes of one schema.

    Attribute ``a`` with domain size ``d`` occupies ``max(1, ceil(log2 d))``
    bits; fields are laid out in schema column order.  Values are encoded by
    their index in the domain's canonical order, so packing and unpacking
    round-trip exactly and the lexicographic enumeration order of
    :meth:`Schema.iter_assignments` is reproducible on codes.
    """

    __slots__ = (
        "names",
        "offsets",
        "widths",
        "field_masks",
        "total_bits",
        "_codes",
        "_values",
    )

    def __init__(self, schema: "Schema") -> None:
        self._build(
            tuple(schema.names),
            [tuple(schema[name].domain.values) for name in schema.names],
        )

    def _build(
        self,
        names: tuple[str, ...],
        domain_values_per_name: Sequence[tuple["Value", ...]],
    ) -> None:
        offsets: dict[str, int] = {}
        widths: dict[str, int] = {}
        field_masks: dict[str, int] = {}
        codes: dict[str, dict["Value", int]] = {}
        values: dict[str, tuple["Value", ...]] = {}
        offset = 0
        for name, domain_values in zip(names, domain_values_per_name):
            width = max(1, (len(domain_values) - 1).bit_length())
            offsets[name] = offset
            widths[name] = width
            field_masks[name] = ((1 << width) - 1) << offset
            values[name] = domain_values
            codes[name] = {value: idx for idx, value in enumerate(domain_values)}
            offset += width
        self.names = names
        self.offsets = offsets
        self.widths = widths
        self.field_masks = field_masks
        self.total_bits = offset
        self._codes = codes
        self._values = values

    # -- stable serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """Portable description of the layout (names, widths, domain sizes).

        Domain *values* are not embedded — a layout is always reconstructed
        against a live schema — but the structural facts that determine code
        compatibility (field order, widths, domain sizes) are, so a stored
        pack can be validated against the schema it is loaded for.
        """
        return {
            "attributes": [
                {
                    "name": name,
                    "width": self.widths[name],
                    "domain_size": len(self._values[name]),
                }
                for name in self.names
            ],
            "total_bits": self.total_bits,
        }

    def compatible_with(self, payload: Mapping[str, object]) -> bool:
        """Would codes packed under ``payload``'s layout decode identically here?"""
        attributes = payload.get("attributes")
        if not isinstance(attributes, list) or len(attributes) != len(self.names):
            return False
        for name, entry in zip(self.names, attributes):
            if (
                entry.get("name") != name
                or entry.get("width") != self.widths[name]
                or entry.get("domain_size") != len(self._values[name])
            ):
                return False
        return payload.get("total_bits") == self.total_bits

    # -- masks ---------------------------------------------------------------
    def mask_for(self, names: Iterable[str]) -> int:
        """OR of the field masks of ``names``; unknown names contribute 0.

        Unknown names are ignored for parity with the reference code paths,
        which filter visible/hidden sets down to the schema's attributes.
        """
        mask = 0
        field_masks = self.field_masks
        for name in names:
            mask |= field_masks.get(name, 0)
        return mask

    @property
    def all_bits(self) -> int:
        return (1 << self.total_bits) - 1

    # -- packing -------------------------------------------------------------
    def pack_assignment(
        self, row: Mapping[str, "Value"], names: Sequence[str] | None = None
    ) -> int:
        """Pack an assignment of ``names`` (default: every attribute)."""
        if names is None:
            names = self.names
        code = 0
        codes = self._codes
        offsets = self.offsets
        for name in names:
            code |= codes[name][row[name]] << offsets[name]
        return code

    def pack_relation(self, relation: "Relation") -> list[int]:
        """Pack the rows of a relation, in row order.

        Only the layout's attributes are packed; the relation may carry its
        columns in any order (they are matched by name) and duplicates of
        the projection onto the layout's attributes are preserved.
        """
        rel_names = relation.attribute_names
        encoders = [
            (rel_names.index(name), self._codes[name], self.offsets[name])
            for name in self.names
        ]
        packed: list[int] = []
        for tup in relation.tuples:
            code = 0
            for pos, codebook, offset in encoders:
                code |= codebook[tup[pos]] << offset
            packed.append(code)
        return packed

    # -- unpacking -----------------------------------------------------------
    def unpack(self, code: int, names: Sequence[str]) -> tuple["Value", ...]:
        """Decode the fields of ``names`` (in the given order) from a code."""
        return tuple(
            self._values[name][
                (code >> self.offsets[name]) & ((1 << self.widths[name]) - 1)
            ]
            for name in names
        )

    def assignment_codes(self, names: Sequence[str]) -> list[int]:
        """Packed codes of every assignment of ``names``.

        The order matches :meth:`Schema.iter_assignments`: the cartesian
        product with the *rightmost* attribute varying fastest and each
        domain iterated in canonical order.
        """
        result = [0]
        for name in names:
            offset = self.offsets[name]
            size = len(self._values[name])
            result = [base | (idx << offset) for base in result for idx in range(size)]
        return result

    def domain_size(self, name: str) -> int:
        return len(self._values[name])


class PackedRelation:
    """The packed-code image of one relation under a :class:`BitLayout`.

    Codes are kept in row order (duplicates under the layout's projection
    included); a numpy ``uint64`` mirror is materialized lazily for layouts
    that fit and relations big enough for vectorization to pay off.

    Since store format v2 a pack can also be **buffer-backed**
    (:meth:`from_backing`): the codes live in a memory-mapped binary
    sidecar (:mod:`repro.kernel.binpack`) and are decoded lazily — the
    numpy mirror is a zero-copy view over the mapping, and the Python-int
    list materializes only if a scalar path actually asks for it, so
    co-located processes share one set of read-only pages.
    """

    __slots__ = ("layout", "_codes", "_backing", "_rows", "_array")

    def __init__(self, layout: BitLayout, codes: list[int]) -> None:
        self.layout = layout
        self._codes = codes
        self._backing = None
        self._rows = len(codes)
        self._array = None

    @classmethod
    def from_relation(
        cls, relation: "Relation", layout: BitLayout | None = None
    ) -> "PackedRelation":
        layout = layout if layout is not None else BitLayout(relation.schema)
        return cls(layout, layout.pack_relation(relation))

    @classmethod
    def from_backing(cls, layout: BitLayout, backing) -> "PackedRelation":
        """A pack whose codes live in a :class:`~.binpack.CodeBacking`."""
        packed = cls.__new__(cls)
        packed.layout = layout
        packed._codes = None
        packed._backing = backing
        packed._rows = backing.rows
        packed._array = None
        return packed

    @property
    def codes(self) -> list[int]:
        """The codes as Python ints (decoded once for backed packs)."""
        if self._codes is None:
            self._codes = self._backing.materialize()
        return self._codes

    @property
    def mapped_bytes(self) -> int:
        """Bytes of memory-mapped backing behind this pack (0 if unmapped)."""
        backing = self._backing
        return backing.nbytes if backing is not None and backing.mapped else 0

    # -- stable serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form: the layout description plus the raw codes.

        Codes are arbitrary-precision Python ints, which JSON carries
        exactly, so packs wider than 64 bits round-trip unchanged —
        including packs loaded back from a binary v2 sidecar, whose
        payload must be byte-identical to the v1 JSON it migrated from.
        """
        return {"layout": self.layout.to_dict(), "codes": list(self.codes)}

    def to_binary(self) -> tuple[dict, bytes]:
        """Store-format-v2 form: a descriptor document plus sidecar bytes.

        The returned dict mirrors :meth:`to_dict` with the code list
        replaced by a :mod:`~repro.kernel.binpack` descriptor (the caller
        attaches the sidecar ``"file"`` name it writes the bytes under).
        """
        from . import binpack

        descriptor, payload = binpack.encode_codes(
            self.codes, self.layout.total_bits
        )
        return {"layout": self.layout.to_dict(), "codes": descriptor}, payload

    @classmethod
    def from_dict(
        cls,
        layout: BitLayout,
        payload: Mapping[str, object],
        base_dir: "str | None" = None,
    ) -> "PackedRelation":
        """Rebuild a pack against a live layout; ``None``-safe validation.

        Raises :class:`ValueError` when the stored layout description is
        structurally incompatible with ``layout`` (field order, widths or
        domain sizes drifted), which turns a silently-corrupt cache read
        into a recompile.  A v2 payload carries a binary-sidecar
        descriptor where v1 carried the code list; resolving it requires
        ``base_dir`` (the artifact's directory), and a v1-era caller that
        passes none fails the same validation path instead of crashing.
        """
        stored_layout = payload.get("layout", {})
        if not layout.compatible_with(stored_layout):
            raise ValueError("stored pack layout is incompatible with the schema")
        codes = payload["codes"]
        if isinstance(codes, Mapping):
            from pathlib import Path

            from . import binpack

            if base_dir is None:
                raise ValueError("binary pack payload requires a base directory")
            name = str(codes.get("file", ""))
            if not name or Path(name).name != name:
                raise ValueError(f"invalid code sidecar name {name!r}")
            backing = binpack.open_codes(
                Path(base_dir) / name, codes, layout.total_bits
            )
            return cls.from_backing(layout, backing)
        return cls(layout, [int(code) for code in codes])

    def __len__(self) -> int:
        return self._rows

    @property
    def use_numpy(self) -> bool:
        """Whether the word-parallel numpy path applies to this relation."""
        return (
            HAVE_NUMPY
            and self.layout.total_bits <= NUMPY_MAX_BITS
            and self._rows >= NUMPY_MIN_ROWS
        )

    @property
    def array(self):
        """Lazy ``uint64`` mirror of the codes (``None`` when not eligible)."""
        if (
            self._array is None
            and HAVE_NUMPY
            and self.layout.total_bits <= NUMPY_MAX_BITS
        ):
            if self._backing is not None:
                self._array = self._backing.array()
            if self._array is None:
                self._array = _np.fromiter(
                    self.codes, dtype=_np.uint64, count=self._rows
                )
        return self._array
