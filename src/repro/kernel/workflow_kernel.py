"""Compiled possible-worlds kernel for workflow out-set enumeration.

The reference enumerator in :mod:`repro.core.possible_worlds` materializes
every candidate world as a list of row dicts, then filters by the modules'
functional dependencies and the known functionality of visible public
modules.  A :class:`CompiledWorkflow` runs the *same* semantics ("one
completion of the hidden attributes per visible tuple", Definitions 4–6)
on packed integer rows:

* a candidate row is ``visible_code | hidden_code`` — one OR,
* an FD check is two AND-masks and a dict probe,
* known public functionality is a precompiled ``input_code -> output_code``
  table lookup,

and the enumeration is a depth-first search that places one row per
visible tuple, checking constraints *incrementally* so dead branches are
abandoned at the first conflicting row instead of after building a full
candidate world.  The DFS visits the surviving worlds in exactly the order
the reference's ``itertools.product``-then-filter pass yields them, so
early-termination behaviour (``stop_at``) matches the reference path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..exceptions import PrivacyError
from .packing import BitLayout, PackedRelation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.attributes import Value
    from ..core.relation import Relation
    from ..core.workflow import Workflow

__all__ = ["CompiledWorkflow"]


def _default_work_limit() -> int:
    """:data:`repro.core.possible_worlds.DEFAULT_WORK_LIMIT`, read lazily.

    Imported at call time (not module import time) so the kernel stays
    importable from the core hot paths without a circular import, while the
    two backends can never drift apart on the default cap.
    """
    from ..core.possible_worlds import DEFAULT_WORK_LIMIT

    return DEFAULT_WORK_LIMIT


class CompiledWorkflow:
    """Bit-compiled form of a workflow's provenance relation."""

    __slots__ = (
        "workflow",
        "base_relation",
        "layout",
        "packed",
        "_module_bits",
        "_public_tables",
    )

    def __init__(
        self, workflow: "Workflow", relation: "Relation | None" = None
    ) -> None:
        self.workflow = workflow
        self.base_relation = (
            relation if relation is not None else workflow.provenance_relation()
        )
        self.layout = BitLayout(workflow.schema)
        self.packed = PackedRelation.from_relation(self.base_relation, self.layout)
        self._module_bits: dict[str, tuple[int, int]] = {
            module.name: (
                self.layout.mask_for(module.input_names),
                self.layout.mask_for(module.output_names),
            )
            for module in workflow.modules
        }
        self._public_tables: dict[str, dict[int, int]] = {}

    # -- stable serialization ----------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe form of the packed tables for the derivation store.

        Only the packed relation is persisted: module bitmasks are derived
        from the schema in microseconds and public functionality tables are
        lazy, so shipping the codes is what saves the expensive pass
        (row-by-row packing of a potentially large provenance relation).
        """
        return {"pack": self.packed.to_dict()}

    @classmethod
    def from_payload(
        cls,
        workflow: "Workflow",
        relation: "Relation",
        payload: dict,
        base_dir: "str | None" = None,
    ) -> "CompiledWorkflow":
        """Rebuild a compiled workflow from :meth:`to_payload` output.

        ``workflow`` and ``relation`` must be the live objects the payload
        was compiled from (the store guarantees this by keying payloads on
        the workflow's content fingerprint); the packed codes are validated
        structurally against the schema's layout and a mismatch raises
        :class:`ValueError` so callers fall back to recompiling.
        """
        compiled = cls.__new__(cls)
        compiled.workflow = workflow
        compiled.base_relation = relation
        compiled.layout = BitLayout(workflow.schema)
        compiled.packed = PackedRelation.from_dict(
            compiled.layout, payload["pack"], base_dir=base_dir
        )
        compiled._module_bits = {
            module.name: (
                compiled.layout.mask_for(module.input_names),
                compiled.layout.mask_for(module.output_names),
            )
            for module in workflow.modules
        }
        compiled._public_tables = {}
        return compiled

    # -- precompiled public functionality --------------------------------------
    def _public_table(self, module_name: str) -> dict[int, int]:
        """``input_code -> output_code`` over a public module's full domain."""
        cached = self._public_tables.get(module_name)
        if cached is not None:
            return cached
        module = self.workflow.module(module_name)
        in_bits, out_bits = self._module_bits[module_name]
        pack = self.layout.pack_assignment
        names = module.attribute_names
        table: dict[int, int] = {}
        for row in module.relation():
            code = pack(row, names)
            table[code & in_bits] = code & out_bits
        cached = table
        self._public_tables[module_name] = table
        return table

    # -- out-set enumeration ----------------------------------------------------
    def module_out_sets(
        self,
        module_name: str,
        visible: Iterable[str],
        hidden_public_modules: Iterable[str] = (),
        stop_at: int | None = None,
        work_limit: int | None = None,
    ) -> dict[tuple["Value", ...], set[tuple["Value", ...]]]:
        """``OUT_{x,W}`` for every input of one module (Definitions 5/6).

        Semantics match :func:`repro.core.possible_worlds.workflow_out_sets`
        exactly, including the vacuous-world case (a world not exercising an
        input contributes the module's whole range) and the ``stop_at``
        early termination.
        """
        if work_limit is None:
            work_limit = _default_work_limit()
        workflow = self.workflow
        module = workflow.module(module_name)
        schema_names = workflow.schema.names
        visible_set = set(visible)
        hidden_names = [name for name in schema_names if name not in visible_set]
        vis_bits = self.layout.mask_for(visible_set)

        codes = self.packed.codes
        view: list[int] = []
        seen: set[int] = set()
        for code in codes:
            masked = code & vis_bits
            if masked not in seen:
                seen.add(masked)
                view.append(masked)

        hidden_codes = self.layout.assignment_codes(hidden_names)
        work = 1
        for _ in view:
            work *= max(len(hidden_codes), 1)
            if work > work_limit:
                raise PrivacyError(
                    f"workflow world enumeration exceeds work limit ({work} > "
                    f"{work_limit}); reduce the instance or raise work_limit"
                )

        in_bits, out_bits = self._module_bits[module_name]
        input_keys = {code & in_bits for code in codes}
        all_out_codes = set(self.layout.assignment_codes(module.output_names))
        outputs: dict[int, set[int]] = {key: set() for key in input_keys}
        full_range = len(all_out_codes)

        hidden_public = set(hidden_public_modules)
        respected = [
            (self._module_bits[m.name], self._public_table(m.name))
            for m in workflow.public_modules
            if m.name not in hidden_public
        ]
        fd_bits = [self._module_bits[m.name] for m in workflow.modules]
        fd_maps: list[dict[int, int]] = [{} for _ in fd_bits]

        def saturated() -> bool:
            if stop_at is None:
                return all(len(outs) >= full_range for outs in outputs.values())
            return all(len(outs) >= stop_at for outs in outputs.values())

        n_positions = len(view)
        chosen = [0] * n_positions
        stop = False

        def emit() -> None:
            nonlocal stop
            per_input: dict[int, int] = {}
            for row in chosen:
                key = row & in_bits
                if key in outputs:
                    per_input[key] = row & out_bits
            for key in input_keys:
                assigned = per_input.get(key)
                if assigned is not None:
                    outputs[key].add(assigned)
                else:
                    # The world never exercises this input, so it is
                    # consistent with any output (Definition 5's vacuous case).
                    outputs[key] |= all_out_codes
            if saturated():
                stop = True

        def place(row: int) -> list[tuple[int, int]] | None:
            """Add one row to the FD maps; ``None`` on conflict."""
            for (key_bits, val_bits), table in respected:
                if table[row & key_bits] != row & val_bits:
                    return None
            added: list[tuple[int, int]] = []
            for index, (key_bits, val_bits) in enumerate(fd_bits):
                key = row & key_bits
                value = row & val_bits
                existing = fd_maps[index].get(key)
                if existing is None:
                    fd_maps[index][key] = value
                    added.append((index, key))
                elif existing != value:
                    for undo_index, undo_key in added:
                        del fd_maps[undo_index][undo_key]
                    return None
            return added

        def search(position: int) -> None:
            nonlocal stop
            if position == n_positions:
                emit()
                return
            base = view[position]
            for hidden_code in hidden_codes:
                row = base | hidden_code
                added = place(row)
                if added is None:
                    continue
                chosen[position] = row
                search(position + 1)
                for undo_index, undo_key in added:
                    del fd_maps[undo_index][undo_key]
                if stop:
                    return

        search(0)

        unpack = self.layout.unpack
        input_names = module.input_names
        output_names = module.output_names
        out_tuples = {code: unpack(code, output_names) for code in all_out_codes}
        return {
            unpack(key, input_names): {out_tuples[code] for code in outs}
            for key, outs in outputs.items()
        }
