"""Backend selection for the privacy kernel.

Two backends implement the privacy analysis and derivation hot paths:

* ``"kernel"`` (the default) — the bit-compiled fast path of this package,
* ``"reference"`` — the original brute-force enumerators in
  :mod:`repro.core`, kept as the validation oracle.

Core functions take ``backend=None`` meaning "the process default"; tests
and benchmarks pin a backend explicitly.  :func:`set_default_backend` is a
process-wide escape hatch (e.g. to run an entire suite against the
reference oracle).
"""

from __future__ import annotations

__all__ = [
    "KERNEL",
    "REFERENCE",
    "VALID_BACKENDS",
    "resolve_backend",
    "get_default_backend",
    "set_default_backend",
]

KERNEL = "kernel"
REFERENCE = "reference"
VALID_BACKENDS = (KERNEL, REFERENCE)

_default_backend = KERNEL


def get_default_backend() -> str:
    """The backend used when a function is called with ``backend=None``."""
    return _default_backend


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous default."""
    global _default_backend
    resolved = resolve_backend(backend)
    previous = _default_backend
    _default_backend = resolved
    return previous


def resolve_backend(backend: str | None) -> str:
    """Normalize a ``backend=`` argument (``None`` -> process default)."""
    if backend is None:
        return _default_backend
    if backend not in VALID_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {VALID_BACKENDS}"
        )
    return backend
