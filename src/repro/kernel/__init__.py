"""Bit-compiled privacy kernel.

This package is the compilation layer behind the core privacy analysis: it
packs module and workflow relations into integer bitmask tables once
(:mod:`~repro.kernel.packing`), then answers OUT-set counting, Γ-privacy
checks, minimal-safe-subset search and possible-worlds out-set enumeration
as word-parallel bit operations (:mod:`~repro.kernel.module_kernel`,
:mod:`~repro.kernel.workflow_kernel`).  The brute-force enumerators in
:mod:`repro.core` remain available behind ``backend="reference"`` and are
the oracle the kernel is property-tested against.

Compilation is memoized: :func:`compile_module` / :func:`compile_workflow`
return the same compiled object for the same (module, relation) pair, so a
solver sweep or a planner re-verifying several solutions packs each
relation exactly once.  The memo is bounded (FIFO eviction) and pins the
source objects of live entries, so ``id()`` reuse can never alias a stale
entry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from .backend import (
    KERNEL,
    REFERENCE,
    VALID_BACKENDS,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from .module_kernel import CompiledModule, batching_enabled, sweep_batching
from .packing import (
    BATCH_MEMORY_BUDGET,
    BATCH_MIN_MASKS,
    HAVE_NUMPY,
    BitLayout,
    PackedRelation,
)
from .workflow_kernel import CompiledWorkflow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.module import Module
    from ..core.relation import Relation
    from ..core.workflow import Workflow

__all__ = [
    "KERNEL",
    "REFERENCE",
    "VALID_BACKENDS",
    "HAVE_NUMPY",
    "BATCH_MEMORY_BUDGET",
    "BATCH_MIN_MASKS",
    "BitLayout",
    "PackedRelation",
    "CompiledModule",
    "CompiledWorkflow",
    "batching_enabled",
    "sweep_batching",
    "compile_module",
    "compile_workflow",
    "clear_compile_cache",
    "compile_cache_info",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
]

#: Bounded compile memos.  Keys are ``(id(source), id(relation) or -1)``;
#: every live entry holds strong references to its sources, so an id cannot
#: be recycled while its entry is alive.
_COMPILE_CACHE_LIMIT = 256
_modules: "OrderedDict[tuple[int, int], CompiledModule]" = OrderedDict()
_workflows: "OrderedDict[tuple[int, int], CompiledWorkflow]" = OrderedDict()
_hits = 0
_misses = 0


def _memoize(cache: OrderedDict, key: tuple[int, int], factory):
    global _hits, _misses
    cached = cache.get(key)
    if cached is not None:
        _hits += 1
        cache.move_to_end(key)
        return cached
    _misses += 1
    compiled = factory()
    cache[key] = compiled
    while len(cache) > _COMPILE_CACHE_LIMIT:
        cache.popitem(last=False)
    return compiled


def compile_module(
    module: "Module", relation: "Relation | None" = None
) -> CompiledModule:
    """The compiled form of a module's (possibly restricted) relation."""
    key = (id(module), id(relation) if relation is not None else -1)
    return _memoize(_modules, key, lambda: CompiledModule(module, relation))


def compile_workflow(
    workflow: "Workflow", relation: "Relation | None" = None
) -> CompiledWorkflow:
    """The compiled form of a workflow's provenance relation."""
    key = (id(workflow), id(relation) if relation is not None else -1)
    return _memoize(_workflows, key, lambda: CompiledWorkflow(workflow, relation))


def clear_compile_cache() -> None:
    """Drop every memoized compilation (mainly for tests and benchmarks)."""
    global _hits, _misses
    _modules.clear()
    _workflows.clear()
    _hits = _misses = 0


def compile_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the compile memos."""
    return {
        "hits": _hits,
        "misses": _misses,
        "modules": len(_modules),
        "workflows": len(_workflows),
    }
