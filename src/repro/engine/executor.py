"""Parallel sweep executor: fan a solve grid out over worker processes.

The paper's evaluation — and every benchmark and CLI comparison in this
repository — is sweep-shaped: run a grid of ``(workflow × Γ × requirement
kind × solver × seed)`` cells and collect one flat record per cell.  Until
PR 3 those sweeps ran strictly single-process; this module fans them out
over a :class:`concurrent.futures.ProcessPoolExecutor` while keeping every
guarantee the serial path had:

* **deterministic results** — cells are expanded in a fixed order, each
  record carries its cell index, and the report is sorted by it, so a
  parallel sweep returns *identical records* (modulo timings) to a serial
  one;
* **failure isolation** — a solver error (or a crashed chunk) yields an
  error record for the affected cells, never a dead sweep;
* **shared derivation** — cells are chunked by *shared-module overlap*:
  instances are grouped into families (union-find over their module content
  fingerprints, computed straight from the serialized payloads), and all
  cells of one family at one (Γ, kind) point are dispatched to one worker,
  whose module-granular cache pays each *distinct* module derivation once
  across the whole family — a grid over ``workflow_family`` edit-chain
  variants derives each edited module once, not once per variant (unrelated
  instances, and distinct Γ/kind points, still fan out as before);
* **per-worker store attachment** — with a ``store`` directory, every
  worker attaches a persistent :class:`~repro.engine.store.DerivationStore`
  as its cache's back tier, so derivations (and whole solve results) are
  shared *across* workers and *across* runs: a repeated sweep against a
  warm store performs zero requirement derivations.

Workflows carry arbitrary Python callables and cannot be pickled, so cells
ship the *serialized* instance (the tabulated-functionality JSON payload of
:mod:`repro.workloads.serialization`) and every worker rebuilds and caches
it once per process.  Tabulation enumerates each module's input domain, so
instances containing a very-high-arity module (e.g. the paper's Example-5
star center at large n) should stay on the in-process path
(``analysis.sweep``/``compare_solvers`` with ``n_jobs=1``) rather than be
shipped through a :class:`SweepInstance`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..exceptions import RequirementError
from .cache import CacheStats, DerivationCache
from .planner import Planner
from .store import DerivationStore, ResultKey

__all__ = [
    "SweepCell",
    "SweepInstance",
    "SweepReport",
    "SweepSpec",
    "WorkerContext",
    "default_jobs",
    "run_sweep",
    "spec_from_grid",
    "worker_context",
]

#: Keys of a record that legitimately differ between runs and process
#: layouts (wall-clock and cache-locality artifacts).  Everything else must
#: be identical between a serial and a parallel execution of one grid.
VOLATILE_RECORD_KEYS = ("seconds", "cache", "from_store")


def default_jobs() -> int:
    """A conservative default worker count (half the cores, at least 1)."""
    return max(1, (os.cpu_count() or 2) // 2)


def scrub_record(record: Mapping[str, Any]) -> dict[str, Any]:
    """A record with its volatile keys removed (for cross-run comparison)."""
    return {k: v for k, v in record.items() if k not in VOLATILE_RECORD_KEYS}


# ---------------------------------------------------------------------------
# Grid specification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepInstance:
    """One instance of the grid: a serialized workflow or problem.

    ``source`` is ``"workflow"`` (payload from
    :func:`~repro.workloads.serialization.workflow_to_dict`; requirement
    lists are derived per (Γ, kind) grid point) or ``"problem"`` (payload
    from :func:`~repro.workloads.serialization.problem_to_dict`; Γ, kind,
    hidable attributes and requirement lists come baked in and the grid's
    ``gammas``/``kinds`` axes do not apply).
    """

    label: str
    source: str
    payload: Mapping[str, Any]

    def __post_init__(self) -> None:
        if self.source not in ("workflow", "problem"):
            raise ValueError(f"unknown sweep instance source {self.source!r}")


@dataclass(frozen=True)
class SweepCell:
    """One grid point: (instance, Γ, kind, solver, seed) plus report tags."""

    index: int
    label: str
    gamma: int | None
    kind: str | None
    solver: str
    seed: int | None
    params: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class SweepSpec:
    """A full sweep grid: instances × gammas × kinds × solvers × seeds.

    The solver axis is normally the cross product ``solvers × seeds``; pass
    ``solver_seed_pairs`` (one flat tuple, or a per-instance-label mapping)
    to enumerate explicit ``(solver, seed)`` pairs instead — e.g. randomized
    solvers repeated per seed next to deterministic solvers run once.
    """

    instances: tuple[SweepInstance, ...]
    gammas: tuple[int, ...] = (2,)
    kinds: tuple[str, ...] = ("set",)
    solvers: tuple[str, ...] = ("auto",)
    seeds: tuple[int | None, ...] = (0,)
    solver_seed_pairs: (
        Mapping[str, tuple[tuple[str, int | None], ...]]
        | tuple[tuple[str, int | None], ...]
        | None
    ) = None
    backend: str | None = None
    verify: bool = False
    params: Mapping[str, tuple[Any, ...]] = field(default_factory=dict)

    def _pairs_for(self, label: str) -> tuple[tuple[str, int | None], ...]:
        if self.solver_seed_pairs is None:
            return tuple(
                (solver, seed) for solver in self.solvers for seed in self.seeds
            )
        if isinstance(self.solver_seed_pairs, Mapping):
            return tuple(self.solver_seed_pairs.get(label, ()))
        return tuple(self.solver_seed_pairs)

    def cells(self) -> list[SweepCell]:
        """Expand the grid in deterministic instance-major order."""
        cells: list[SweepCell] = []
        index = 0
        for instance in self.instances:
            if instance.source == "problem":
                derivation_points: Iterable[tuple[int | None, str | None]] = [
                    (None, None)
                ]
            else:
                derivation_points = [
                    (gamma, kind) for gamma in self.gammas for kind in self.kinds
                ]
            tags = tuple(self.params.get(instance.label, ()))
            pairs = self._pairs_for(instance.label)
            for gamma, kind in derivation_points:
                for solver, seed in pairs:
                    cells.append(
                        SweepCell(
                            index=index,
                            label=instance.label,
                            gamma=gamma,
                            kind=kind,
                            solver=solver,
                            seed=seed,
                            params=tags,
                        )
                    )
                    index += 1
        return cells


def spec_from_grid(grid: Mapping[str, Any], base_dir: str = ".") -> SweepSpec:
    """Build a :class:`SweepSpec` from a JSON grid description.

    Recognized keys: ``workflows`` (paths to workflow *or* problem files —
    a problem file contributes its embedded workflow and rides the
    ``gammas``/``kinds`` axes), ``problems`` (paths to problem files used
    verbatim, with their baked Γ/kind/requirements), ``gammas``, ``kinds``,
    ``solvers``, ``seeds``, ``backend``, ``verify``.  Relative paths are
    resolved against ``base_dir``.
    """
    import json

    if not isinstance(grid, Mapping):
        raise ValueError("sweep grid must be a JSON object")
    for axis in ("workflows", "problems", "gammas", "kinds", "solvers", "seeds"):
        value = grid.get(axis)
        if value is not None and (
            isinstance(value, str) or not isinstance(value, (list, tuple))
        ):
            raise ValueError(f"grid key {axis!r} must be a JSON array")

    instances: list[SweepInstance] = []
    used_labels: set[str] = set()

    def unique_label(path: str) -> str:
        stem = os.path.splitext(os.path.basename(path))[0]
        label = stem
        suffix = 2
        while label in used_labels:
            label = f"{stem}#{suffix}"
            suffix += 1
        used_labels.add(label)
        return label

    def load(path: str) -> Mapping[str, Any]:
        full = path if os.path.isabs(path) else os.path.join(base_dir, path)
        with open(full, "r", encoding="utf-8") as handle:
            return json.load(handle)

    for path in grid.get("workflows", ()):
        payload = load(path)
        if "workflow" in payload:  # a problem file: use its workflow part
            payload = payload["workflow"]
        instances.append(SweepInstance(unique_label(path), "workflow", payload))
    for path in grid.get("problems", ()):
        instances.append(SweepInstance(unique_label(path), "problem", load(path)))
    if not instances:
        raise ValueError("sweep grid names no 'workflows' or 'problems'")

    seeds = tuple(grid.get("seeds", (0,)))
    return SweepSpec(
        instances=tuple(instances),
        gammas=tuple(int(g) for g in grid.get("gammas", (2,))),
        kinds=tuple(grid.get("kinds", ("set",))),
        solvers=tuple(grid.get("solvers", ("auto",))),
        seeds=tuple(None if s is None else int(s) for s in seeds),
        backend=grid.get("backend"),
        verify=bool(grid.get("verify", False)),
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class WorkerContext:
    """Per-process state: one cache (with store back tier), rebuilt instances.

    This is the worker bootstrap shared by every process-fanning surface:
    the sweep executor's pool initializer builds one per worker, and the
    service's execution tier (:mod:`repro.service.exec_tier`) attaches its
    long-lived solve workers through the same class — one module-granular
    :class:`~repro.engine.cache.DerivationCache`, optionally backed by a
    per-process :class:`~repro.engine.store.DerivationStore` over a shared
    directory, plus identity-preserving instance/planner memos.
    """

    def __init__(
        self, store_path: str | None, store: DerivationStore | None = None
    ) -> None:
        if store is not None:
            self.store: DerivationStore | None = store
        else:
            self.store = DerivationStore(store_path) if store_path else None
        self.cache = DerivationCache(store=self.store)
        self._instances: dict[str, tuple[Any, str]] = {}  # label -> (obj, fp)
        self._planners: dict[tuple, Planner] = {}

    def _instance(self, instance: SweepInstance) -> tuple[Any, str]:
        cached = self._instances.get(instance.label)
        if cached is not None:
            return cached
        from ..workloads.fingerprint import payload_fingerprint
        from ..workloads.serialization import problem_from_dict, workflow_from_dict

        if instance.source == "workflow":
            obj = workflow_from_dict(instance.payload)
            fingerprint = self.cache.fingerprint(obj)
        else:
            obj = problem_from_dict(instance.payload)
            fingerprint = payload_fingerprint(
                {"problem": instance.payload}
            )
        built = (obj, fingerprint)
        self._instances[instance.label] = built
        return built

    def planner(
        self,
        instance: SweepInstance,
        gamma: int | None,
        kind: str | None,
        backend: str | None,
    ) -> tuple[Planner, str]:
        key = (instance.label, gamma, kind, backend)
        cached = self._planners.get(key)
        obj, fingerprint = self._instance(instance)
        if cached is not None:
            return cached, fingerprint
        if instance.source == "workflow":
            planner = Planner(
                obj, gamma, kind=kind, cache=self.cache, backend=backend
            )
        else:
            planner = Planner.from_problem(obj, cache=self.cache, backend=backend)
        self._planners[key] = planner
        return planner, fingerprint


#: Backwards-compatible alias (pre-refactor internal name).
_WorkerContext = WorkerContext

#: Worker-process singleton, created by the pool initializer (or lazily by
#: :func:`worker_context`).
_CONTEXT: WorkerContext | None = None


def worker_context(store_path: str | None = None) -> WorkerContext:
    """The process-wide :class:`WorkerContext`, created on first use.

    Every process-fanning surface bootstraps through here so one worker
    process holds exactly one cache/store attachment no matter how it was
    spawned.  ``store_path`` only matters on the creating call; later calls
    return the existing singleton unchanged.
    """
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = WorkerContext(store_path)
    return _CONTEXT


def _init_worker(store_path: str | None) -> None:
    # Pool initializers always start from a fresh context: a recycled
    # interpreter (e.g. fork reuse) must attach the *this* sweep's store.
    global _CONTEXT
    _CONTEXT = None
    worker_context(store_path)


def _error_record(cell: SweepCell, message: str, error_type: str) -> dict[str, Any]:
    record: dict[str, Any] = {
        "index": cell.index,
        "workflow": cell.label,
        "gamma": cell.gamma,
        "kind": cell.kind,
        "solver": cell.solver,
        "seed": cell.seed,
        "method": cell.solver,
        "cost": float("inf"),
        "error": message,
        "error_type": error_type,
        "from_store": False,
    }
    record.update(cell.params)
    return record


def _run_chunk_in(
    context: WorkerContext, chunk: Mapping[str, Any]
) -> tuple[list[dict[str, Any]], dict[str, int]]:
    """Run one chunk of cells (one family's worth) and report stat deltas."""
    instances: Mapping[str, SweepInstance] = chunk["instances"]
    cells: Sequence[SweepCell] = chunk["cells"]
    backend = chunk["backend"]
    verify = bool(chunk["verify"])
    reuse_results = bool(chunk["reuse_results"])

    records: list[dict[str, Any]] = []
    before_chunk = context.cache.stats()
    result_hits = 0
    for cell in cells:
        fingerprint: str | None = None
        result_key: tuple | None = None
        deriving = False
        try:
            planner, fingerprint = context.planner(
                instances[cell.label], cell.gamma, cell.kind, backend
            )
            gamma = planner.gamma if cell.gamma is None else cell.gamma
            kind = planner.kind if cell.kind is None else cell.kind
            result_key = ResultKey(
                planner.backend, gamma, kind, cell.solver, cell.seed, verify
            )
            stored = None
            if context.store is not None and reuse_results:
                stored = context.store.load_result(fingerprint, result_key)
            if stored is not None:
                record = dict(stored)
                record["index"] = cell.index
                record["workflow"] = cell.label
                record["from_store"] = True
                record.update(cell.params)
                result_hits += 1
                records.append(record)
                continue
            before = context.cache.stats()
            deriving = True
            planner.problem()  # phase marker: derivation failures persist
            deriving = False
            result = planner.solve(
                solver=cell.solver, seed=cell.seed, verify=verify
            )
            delta = result.cache_stats.delta(before)
            record = {
                "workflow": cell.label,
                "gamma": gamma,
                "kind": kind,
                "solver": cell.solver,
                "resolved_solver": result.solver,
                "method": str(result.solution.meta.get("method", result.solver)),
                "seed": cell.seed,
                "cost": result.cost,
                "hidden_attributes": sorted(result.hidden_attributes),
                "privatized_modules": sorted(result.privatized_modules),
                "guarantee": result.guarantee,
                "seconds": result.seconds,
            }
            if result.certificate is not None:
                record["verified"] = result.certificate.ok
            if context.store is not None:
                context.store.save_result(fingerprint, result_key, record)
            record["index"] = cell.index
            record["from_store"] = False
            record["cache"] = delta.as_dict()
            record.update(cell.params)
            records.append(record)
        except Exception as exc:  # noqa: BLE001 - failure isolation by design
            record = _error_record(cell, str(exc), type(exc).__name__)
            if (
                context.store is not None
                and result_key is not None
                and deriving
                and isinstance(exc, RequirementError)
            ):
                # Infeasibility surfaced *during derivation* is a pure
                # function of workflow content, so a warm store can skip
                # the failing derivation next run too.  Anything else
                # (work limits, solver applicability, environment
                # failures) can change across versions and configurations
                # and is never persisted.
                context.store.save_result(
                    fingerprint,
                    result_key,
                    {
                        key: value
                        for key, value in record.items()
                        if key not in ("index", "from_store")
                    },
                )
            records.append(record)
    chunk_delta = context.cache.stats().delta(before_chunk).as_dict()
    chunk_delta["result_store_hits"] = result_hits
    return records, chunk_delta


def _run_chunk(chunk: Mapping[str, Any]) -> tuple[list[dict[str, Any]], dict[str, int]]:
    return _run_chunk_in(worker_context(chunk.get("store_path")), chunk)


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------

@dataclass
class SweepReport:
    """Everything a sweep produced: ordered records plus aggregate counters."""

    records: list[dict[str, Any]]
    n_jobs: int
    seconds: float
    stats: dict[str, int]

    @property
    def errors(self) -> int:
        return sum(1 for record in self.records if "error" in record)

    @property
    def result_store_hits(self) -> int:
        return int(self.stats.get("result_store_hits", 0))

    def as_dict(self) -> dict[str, Any]:
        return {
            "cells": len(self.records),
            "errors": self.errors,
            "jobs": self.n_jobs,
            "seconds": self.seconds,
            "stats": dict(self.stats),
            "records": self.records,
        }


def _instance_module_fingerprints(instance: SweepInstance) -> frozenset[str]:
    """Module content fingerprints of a serialized instance (best-effort).

    Computed straight from the JSON payload — no workflow objects are built
    on the driver side.  A malformed payload yields the empty set, which
    simply makes the instance its own family (the worker will surface the
    real error per cell).
    """
    from ..workloads.fingerprint import module_payload_fingerprint

    try:
        payload = instance.payload
        if instance.source == "problem":
            payload = payload["workflow"]
        return frozenset(
            module_payload_fingerprint(module) for module in payload["modules"]
        )
    except Exception:  # noqa: BLE001 - grouping is an optimization only
        return frozenset()


def _families(instances: Sequence[SweepInstance]) -> list[list[str]]:
    """Group instance labels into families by shared-module overlap.

    Union-find over module fingerprints: two instances sharing *any* module
    (by content) land in one family.  Families are returned in first-
    appearance order, members in instance order, so chunk expansion stays
    deterministic.
    """
    parent: dict[str, str] = {instance.label: instance.label for instance in instances}

    def find(label: str) -> str:
        while parent[label] != label:
            parent[label] = parent[parent[label]]
            label = parent[label]
        return label

    owner: dict[str, str] = {}
    for instance in instances:
        for fingerprint in _instance_module_fingerprints(instance):
            seen = owner.setdefault(fingerprint, instance.label)
            if seen != instance.label:
                parent[find(instance.label)] = find(seen)
    families: dict[str, list[str]] = {}
    for instance in instances:
        families.setdefault(find(instance.label), []).append(instance.label)
    return list(families.values())


def _chunks_for(
    spec: SweepSpec, store_path: str | None, reuse_results: bool, chunk_size: int | None
) -> list[dict[str, Any]]:
    """Group cells by (shared-module family, Γ, kind) to share derivations.

    All cells of one family (instances connected by shared module content)
    at one (Γ, kind) point go to one worker context, whose module-granular
    cache derives each distinct module once for the whole family.  Distinct
    (Γ, kind) points still fan out as separate chunks — requirement lists
    are per-(Γ, kind) anyway, so splitting there keeps a single-instance
    multi-Γ grid parallel instead of collapsing it into one serial chunk.
    ``chunk_size`` additionally caps cells per dispatched chunk, trading
    sharing for load balance.
    """
    by_instance = {instance.label: instance for instance in spec.instances}
    family_of = {
        label: index
        for index, family in enumerate(_families(spec.instances))
        for label in family
    }
    grouped: dict[tuple, list[SweepCell]] = {}
    for cell in spec.cells():
        grouped.setdefault(
            (family_of[cell.label], cell.gamma, cell.kind), []
        ).append(cell)
    chunks: list[dict[str, Any]] = []
    for cells in grouped.values():
        pieces = (
            [cells]
            if not chunk_size
            else [cells[i : i + chunk_size] for i in range(0, len(cells), chunk_size)]
        )
        for piece in pieces:
            chunks.append(
                {
                    # Ship only the payloads this piece actually touches —
                    # tabulated workflows can be large and chunks cross the
                    # process boundary.
                    "instances": {
                        label: by_instance[label]
                        for label in dict.fromkeys(c.label for c in piece)
                    },
                    "cells": piece,
                    "backend": spec.backend,
                    "verify": spec.verify,
                    "reuse_results": reuse_results,
                    "store_path": store_path,
                }
            )
    return chunks


def _merge_stats(totals: dict[str, int], delta: Mapping[str, int]) -> None:
    for key, value in delta.items():
        totals[key] = totals.get(key, 0) + int(value)


def run_sweep(
    spec: SweepSpec,
    n_jobs: int = 1,
    store: DerivationStore | str | os.PathLike | None = None,
    reuse_results: bool = True,
    chunk_size: int | None = None,
) -> SweepReport:
    """Execute a sweep grid, serially or across ``n_jobs`` worker processes.

    Parameters
    ----------
    spec:
        The grid (see :class:`SweepSpec` / :func:`spec_from_grid`).
    n_jobs:
        Worker processes; ``1`` runs in-process through the *same* cell
        runner, so serial and parallel sweeps produce identical records
        (modulo timings).  ``0`` or negative selects :func:`default_jobs`.
    store:
        Optional persistent store (instance or directory path).  Each
        worker attaches its own :class:`DerivationStore` over the same
        directory; derived artifacts and solve results are shared across
        workers and across runs.
    reuse_results:
        When a store is attached, serve previously-solved cells straight
        from it (``from_store: true`` in the record) instead of re-running
        the solver.  Derivation-level sharing happens regardless.
    chunk_size:
        Maximum cells per dispatched chunk; defaults to "all solver×seed
        cells of one (shared-module family, Γ, kind) group", which
        maximizes derivation sharing.  Smaller chunks trade sharing for
        balance.
    """
    if n_jobs <= 0:
        n_jobs = default_jobs()
    store_instance: DerivationStore | None = None
    if isinstance(store, DerivationStore):
        store_instance = store
        store_path: str | None = str(store.root)
    elif store is not None:
        store_path = str(store)
    else:
        store_path = None

    chunks = _chunks_for(spec, store_path, reuse_results, chunk_size)
    started = time.perf_counter()
    records: list[dict[str, Any]] = []
    totals: dict[str, int] = {}

    if n_jobs == 1 or len(chunks) <= 1:
        # In-process: reuse a caller-passed store instance so its counters
        # reflect the run (worker processes always open their own).
        context = WorkerContext(store_path, store=store_instance)
        for chunk in chunks:
            chunk_records, delta = _run_chunk_in(context, chunk)
            records.extend(chunk_records)
            _merge_stats(totals, delta)
        effective_jobs = 1
    else:
        effective_jobs = min(n_jobs, len(chunks))
        with ProcessPoolExecutor(
            max_workers=effective_jobs,
            initializer=_init_worker,
            initargs=(store_path,),
        ) as pool:
            pending = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = pending.pop(future)
                    try:
                        chunk_records, delta = future.result()
                    except Exception as exc:  # noqa: BLE001 - isolate dead chunks
                        chunk_records = [
                            _error_record(cell, str(exc), type(exc).__name__)
                            for cell in chunk["cells"]
                        ]
                        delta = {}
                    records.extend(chunk_records)
                    _merge_stats(totals, delta)

    records.sort(key=lambda record: record["index"])
    totals.setdefault("result_store_hits", 0)
    for name in CacheStats().as_dict():
        totals.setdefault(name, 0)
    return SweepReport(
        records=records,
        n_jobs=effective_jobs,
        seconds=time.perf_counter() - started,
        stats=totals,
    )
