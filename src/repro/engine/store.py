"""Persistent, content-addressed store for derived Secure-View artifacts.

Everything expensive about a Secure-View instance is a pure function of the
workflow's *content* plus a handful of small parameters (Γ, requirement
kind, backend, visible set, solver, seed).  A :class:`DerivationStore`
therefore keys every artifact by the workflow's canonical-serialization
fingerprint (:func:`repro.workloads.workflow_fingerprint`) and persists it
under::

    <root>/<fp[:2]>/<fingerprint>/
        meta.json                      # instance summary + format_version
        relation.json                  # provenance relation
        relation.codes.npy|.bin        # (v2) binary relation codes
        pack.json                      # packed kernel tables
        pack.codes.npy|.bin            # (v2) binary pack codes
        req-g<gamma>-<kind>-<backend>.json
        outsets-<keydigest>.json       # one per (module, view, stop_at, backend)
        result-<keydigest>.json        # one per (backend, gamma, kind, solver,
                                       #          seed, verify) solve cell

**Store format v2.**  Format v1 serialized packed relations as base-10 int
lists inside the JSON documents; v2 (the default) moves the code arrays of
the pack and relation tiers into compact little-endian binary **sidecar
files** (:mod:`repro.kernel.binpack`): a standard ``.npy`` ``uint64``
array when the bit layout fits 63 bits, fixed-width raw records otherwise,
so the pure-Python no-numpy path reads the same bytes.  Readers
memory-map sidecars, and :class:`~repro.kernel.packing.PackedRelation`
keeps the mapping as its backing — co-located sweep workers and
``ProcessExecTier`` workers share one set of page-cached read-only pages
per hot pack instead of holding N parsed copies.  Readers accept both
formats (a half-migrated store just works); ``format_version`` selects
what *writes* produce, and :meth:`DerivationStore.migrate` upgrades a v1
store in place, atomically per artifact.  The ``repro store migrate``
CLI wraps it.

so a warm store lets a *different process* — a sweep worker, tomorrow's CLI
invocation, a CI re-run — skip requirement derivation, provenance
materialization, kernel packing, out-set enumeration, and even whole solver
runs.  The store is the persistent back tier of the two-tier
:class:`~repro.engine.cache.DerivationCache`; the cache owns the bounded
in-memory front and probes the store on every memory miss.

**The module tier.**  Requirement derivation — the exponential part of
every solve — is per-module: each private module's list depends only on
that module's own relation.  Module-level artifacts therefore live in a
*shared* tier keyed by :func:`repro.workloads.module_fingerprint` (module
content only, costs and privacy flags excluded)::

    <root>/modules/<mfp[:2]>/<module-fingerprint>/
        meta.json                      # module name / schema summary
        pack.json                      # packed module relation + privacy-level
                                       # memos (CompiledModule.to_payload)
        req-g<gamma>-<kind>-<backend>.json   # one requirement list

Any workflow containing the module — a what-if cost variant, an edited
member of a workflow family, an entirely different pipeline reusing one
step — hits the same entries, so editing one module of a ten-module
workflow re-derives one module, not ten.

**Maintenance.**  :meth:`DerivationStore.disk_stats` summarizes what a
store directory holds; :meth:`DerivationStore.gc` prunes it to a byte
budget, evicting least-recently-used artifacts (by mtime) and never
touching in-flight ``*.tmp-*`` files.  Both back the ``repro store``
CLI subcommands.

Concurrency: writes go to a per-process temp file followed by an atomic
``os.replace``, so concurrent sweep workers racing on one key each publish
a complete document and the last writer wins (all writers derive identical
content, because keys are content hashes).  Corrupt or structurally
incompatible documents are treated as misses and rewritten, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..kernel import BitLayout, CompiledModule, CompiledWorkflow, PackedRelation
from ..kernel import binpack
from ..workloads.serialization import (
    relation_from_dict,
    relation_to_dict,
    requirement_from_dict,
    requirement_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.module import Module
    from ..core.relation import Relation
    from ..core.requirements import RequirementList
    from ..core.workflow import Workflow

__all__ = ["DerivationStore", "ResultKey", "OutSetKey", "FORMAT_VERSION"]

#: The on-disk format new stores write.  v1: every artifact is one JSON
#: document.  v2: pack/relation code arrays live in binary sidecar files.
FORMAT_VERSION = 2

#: Formats this build can *read* (readers are version-agnostic so a store
#: can be migrated while live); anything newer degrades to a miss.
SUPPORTED_FORMAT_VERSIONS = (1, 2)

#: Categories the store tracks hit/miss/write counters for.
_CATEGORIES = (
    "requirements",
    "relation",
    "pack",
    "out_sets",
    "result",
    "module_requirement",
    "module_pack",
)


def _decode_row(domains: list, row: list) -> tuple:
    """Map stored domain indices back to values, rejecting out-of-range ones.

    Explicit bounds check: Python's negative indexing would otherwise make a
    corrupt ``-1`` silently decode to the last domain value instead of
    degrading to a store miss.
    """
    values = []
    for domain, index in zip(domains, row):
        index = int(index)
        if not 0 <= index < len(domain):
            raise ValueError(f"stored domain index {index} out of range")
        values.append(domain[index])
    return tuple(values)


def _key_digest(parts: tuple) -> str:
    """Short stable digest of a JSON-able key tuple (used in filenames)."""
    canonical = json.dumps(parts, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def ResultKey(
    backend: str,
    gamma: int,
    kind: str,
    solver: str,
    seed: int | None,
    verify: bool = False,
) -> tuple:
    """The parameters that (with the fingerprint) identify one solve cell."""
    return ("result", backend, gamma, kind, solver, seed, verify)


def OutSetKey(
    module_name: str,
    visible: frozenset[str],
    hidden_public_modules: frozenset[str],
    stop_at: int | None,
    backend: str,
) -> tuple:
    """The parameters identifying one out-set enumeration."""
    return (
        "outsets",
        module_name,
        sorted(visible),
        sorted(hidden_public_modules),
        stop_at,
        backend,
    )


class DerivationStore:
    """Disk-backed persistence for derived artifacts, keyed by content.

    Parameters
    ----------
    root:
        Directory to persist under; created (with parents) if absent.
    format_version:
        The format *writes* produce (default :data:`FORMAT_VERSION`).
        Readers accept every supported format regardless, so handles with
        different write versions interoperate over one directory; passing
        ``1`` keeps the legacy all-JSON writer alive for migration tests
        and fixtures.

    The store never loads anything it cannot validate: relations are decoded
    against the live workflow schema, packs are checked for bit-layout
    compatibility (v2 additionally for sidecar size/header consistency),
    and any JSON, binary or structural error degrades to a miss.
    """

    def __init__(
        self, root: str | os.PathLike, format_version: int = FORMAT_VERSION
    ) -> None:
        if format_version not in SUPPORTED_FORMAT_VERSIONS:
            raise ValueError(
                f"unsupported store format_version {format_version!r} "
                f"(supported: {SUPPORTED_FORMAT_VERSIONS})"
            )
        self.format_version = int(format_version)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits: dict[str, int] = {category: 0 for category in _CATEGORIES}
        self.misses: dict[str, int] = {category: 0 for category in _CATEGORIES}
        self.writes: dict[str, int] = {category: 0 for category in _CATEGORIES}

    # -- paths and raw IO -------------------------------------------------------
    def _dir(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / fingerprint

    def _module_dir(self, module_fingerprint: str) -> Path:
        # "modules" can never collide with a workflow shard (2 hex chars).
        return self.root / "modules" / module_fingerprint[:2] / module_fingerprint

    def _read(self, category: str, path: Path) -> Any | None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses[category] += 1
            return None
        self.hits[category] += 1
        try:
            # Touch on read so gc's mtime ordering is genuinely least-
            # recently-*used*, not least-recently-written.
            os.utime(path, None)
        except OSError:
            pass
        return payload

    def _write(self, category: str | None, path: Path, payload: Any) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # A read-only or vanished store directory must never kill a
            # solve; persistence is best-effort by design.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        if category is not None:
            self.writes[category] += 1

    def _write_bytes(self, path: Path, data: bytes) -> None:
        """Atomically publish a binary sidecar (same tmp+replace protocol)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    @staticmethod
    def _check_version(payload: Any) -> None:
        """Raise on documents from a format this build cannot read.

        v1 documents carry no ``format`` key; anything newer than
        :data:`SUPPORTED_FORMAT_VERSIONS` degrades to a miss through the
        loaders' normal corrupt-entry path.
        """
        if isinstance(payload, dict):
            version = int(payload.get("format", 1) or 1)
            if version not in SUPPORTED_FORMAT_VERSIONS:
                raise ValueError(f"unsupported store format {version}")

    @staticmethod
    def _touch_sidecar(directory: Path, payload: Any) -> None:
        """Refresh a v2 sidecar's LRU position alongside its JSON document.

        GC evicts by file mtime; touching only ``pack.json`` would let the
        sidecar age out from under a hot document.
        """
        if not isinstance(payload, dict):
            return
        codes = payload.get("pack", {}).get("codes")
        if isinstance(codes, dict):
            try:
                os.utime(directory / str(codes.get("file", "")), None)
            except (OSError, ValueError):
                pass

    def _write_code_sidecar(
        self, directory: Path, descriptor: dict, blob: bytes, stem: str
    ) -> dict:
        """Publish one binary code array; returns the named descriptor."""
        name = f"{stem}.codes{binpack.FILE_SUFFIXES[descriptor['encoding']]}"
        descriptor["file"] = name
        self._write_bytes(directory / name, blob)
        return descriptor

    def _binary_payload(
        self, directory: Path, payload: dict, packed: PackedRelation, stem: str
    ) -> dict:
        """The v2 document for ``payload`` (a v1 ``to_payload`` dict).

        Writes the code sidecar and swaps the in-document code list for
        its descriptor; every other key (e.g. a module pack's ``levels``
        memo) rides along unchanged.
        """
        pack_doc, blob = packed.to_binary()
        self._write_code_sidecar(directory, pack_doc["codes"], blob, stem)
        doc: dict[str, Any] = {"format": FORMAT_VERSION, "pack": pack_doc}
        for key, value in payload.items():
            if key != "pack":
                doc[key] = value
        return doc

    @staticmethod
    def _read_raw(path: Path) -> dict[str, Any]:
        """Best-effort JSON object read: no counters, no mtime touch.

        Meta documents are bookkeeping (popularity, summaries), not cached
        artifacts — reading one must neither count as a store hit nor
        refresh its LRU position.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def _write_meta(self, fingerprint: str, workflow: "Workflow") -> None:
        meta_path = self._dir(fingerprint) / "meta.json"
        existing = self._read_raw(meta_path)
        if existing.get("workflow_payload") is not None:
            return
        from ..workloads.serialization import workflow_to_dict

        payload = dict(existing)  # preserve popularity bumped before save
        payload.update(
            {
                "fingerprint": fingerprint,
                "format_version": self.format_version,
                "workflow": workflow.name,
                "modules": len(workflow),
                "attributes": len(workflow.attribute_names),
                # The canonical serialization rides along so maintenance
                # (service warm-up) can rebuild the instance without the
                # original submitter — meta is the only tier that knows
                # what a fingerprint *is*.
                "workflow_payload": workflow_to_dict(workflow),
            },
        )
        self._write(
            None,  # meta is bookkeeping, not a counted artifact
            meta_path,
            payload,
        )

    # -- requirements -----------------------------------------------------------
    def load_requirements(
        self, fingerprint: str, gamma: int, kind: str, backend: str
    ) -> dict[str, "RequirementList"] | None:
        path = self._dir(fingerprint) / f"req-g{gamma}-{kind}-{backend}.json"
        payload = self._read("requirements", path)
        if payload is None:
            return None
        try:
            return {
                item["module"]: requirement_from_dict(item)
                for item in payload["requirements"]
            }
        except Exception:  # corrupt entries degrade to misses, never crash
            self.hits["requirements"] -= 1
            self.misses["requirements"] += 1
            return None

    def save_requirements(
        self,
        fingerprint: str,
        gamma: int,
        kind: str,
        backend: str,
        requirements: Mapping[str, "RequirementList"],
        workflow: "Workflow | None" = None,
    ) -> None:
        path = self._dir(fingerprint) / f"req-g{gamma}-{kind}-{backend}.json"
        self._write(
            "requirements",
            path,
            {
                "gamma": gamma,
                "kind": kind,
                "backend": backend,
                # Insertion order (workflow module order) is preserved so a
                # store-served mapping is indistinguishable from a freshly
                # derived one — LP/IP constraint ordering, and therefore
                # tie-breaking among equal-cost optima, must not change.
                "requirements": [
                    requirement_to_dict(requirement)
                    for requirement in requirements.values()
                ],
            },
        )
        if workflow is not None:
            self._write_meta(fingerprint, workflow)

    # -- provenance relation ----------------------------------------------------
    def _relation_from_binary(
        self, schema, payload: Mapping[str, Any], directory: Path
    ) -> "Relation":
        """Decode a v2 binary relation document against a live schema.

        The stored bit layout is validated structurally against
        ``BitLayout(schema)`` (names, widths, domain sizes), then every
        code is unpacked by domain index — an out-of-range field raises,
        so corruption degrades to a miss exactly like a bad v1 row.
        """
        from ..core.relation import Relation

        layout = BitLayout(schema)
        packed = PackedRelation.from_dict(
            layout, payload["pack"], base_dir=str(directory)
        )
        names = layout.names
        return Relation.from_tuples(
            schema,
            [layout.unpack(code, names) for code in packed.codes],
            check_domains=False,
        )

    def load_relation(
        self, fingerprint: str, workflow: "Workflow"
    ) -> "Relation | None":
        directory = self._dir(fingerprint)
        payload = self._read("relation", directory / "relation.json")
        if payload is None:
            return None
        try:
            self._check_version(payload)
            if isinstance(payload, dict) and "pack" in payload:
                loaded = self._relation_from_binary(
                    workflow.schema, payload, directory
                )
            else:
                loaded = relation_from_dict(workflow.schema, payload)
        except Exception:
            self.hits["relation"] -= 1
            self.misses["relation"] += 1
            return None
        self._touch_sidecar(directory, payload)
        return loaded

    def save_relation(
        self, fingerprint: str, relation: "Relation", workflow: "Workflow | None" = None
    ) -> None:
        directory = self._dir(fingerprint)
        if self.format_version >= 2:
            payload = self._binary_payload(
                directory, {}, PackedRelation.from_relation(relation), "relation"
            )
        else:
            payload = relation_to_dict(relation)
        self._write("relation", directory / "relation.json", payload)
        if workflow is not None:
            self._write_meta(fingerprint, workflow)

    # -- compiled kernel packs --------------------------------------------------
    def load_pack(
        self, fingerprint: str, workflow: "Workflow", relation: "Relation"
    ) -> CompiledWorkflow | None:
        directory = self._dir(fingerprint)
        payload = self._read("pack", directory / "pack.json")
        if payload is None:
            return None
        try:
            self._check_version(payload)
            loaded = CompiledWorkflow.from_payload(
                workflow, relation, payload, base_dir=str(directory)
            )
        except Exception:
            self.hits["pack"] -= 1
            self.misses["pack"] += 1
            return None
        self._touch_sidecar(directory, payload)
        return loaded

    def save_pack(self, fingerprint: str, compiled: CompiledWorkflow) -> None:
        directory = self._dir(fingerprint)
        payload = compiled.to_payload()
        if self.format_version >= 2:
            payload = self._binary_payload(directory, payload, compiled.packed, "pack")
        self._write("pack", directory / "pack.json", payload)

    # -- shared module tier -----------------------------------------------------
    def _write_module_meta(self, module_fingerprint: str, module: "Module") -> None:
        meta_path = self._module_dir(module_fingerprint) / "meta.json"
        if meta_path.exists():
            return
        self._write(
            None,  # meta is bookkeeping, not a counted artifact
            meta_path,
            {
                "fingerprint": module_fingerprint,
                "format_version": self.format_version,
                "module": module.name,
                "inputs": list(module.input_names),
                "outputs": list(module.output_names),
            },
        )

    def load_module_requirement(
        self, module_fingerprint: str, gamma: int, kind: str, backend: str
    ) -> "RequirementList | None":
        path = (
            self._module_dir(module_fingerprint)
            / f"req-g{gamma}-{kind}-{backend}.json"
        )
        payload = self._read("module_requirement", path)
        if payload is None:
            return None
        try:
            loaded = requirement_from_dict(payload["requirement"])
            if payload["kind"] != kind:
                raise ValueError("stored requirement kind mismatch")
            return loaded
        except Exception:  # corrupt entries degrade to misses, never crash
            self.hits["module_requirement"] -= 1
            self.misses["module_requirement"] += 1
            return None

    def save_module_requirement(
        self,
        module_fingerprint: str,
        gamma: int,
        kind: str,
        backend: str,
        requirement: "RequirementList",
        module: "Module | None" = None,
    ) -> None:
        path = (
            self._module_dir(module_fingerprint)
            / f"req-g{gamma}-{kind}-{backend}.json"
        )
        self._write(
            "module_requirement",
            path,
            {
                "gamma": gamma,
                "kind": kind,
                "backend": backend,
                "requirement": requirement_to_dict(requirement),
            },
        )
        if module is not None:
            self._write_module_meta(module_fingerprint, module)

    def load_module_pack(
        self, module_fingerprint: str, module: "Module"
    ) -> CompiledModule | None:
        directory = self._module_dir(module_fingerprint)
        payload = self._read("module_pack", directory / "pack.json")
        if payload is None:
            return None
        try:
            self._check_version(payload)
            loaded = CompiledModule.from_payload(
                module, payload, base_dir=str(directory)
            )
        except Exception:
            self.hits["module_pack"] -= 1
            self.misses["module_pack"] += 1
            return None
        self._touch_sidecar(directory, payload)
        return loaded

    def save_module_pack(
        self,
        module_fingerprint: str,
        compiled: CompiledModule,
        module: "Module | None" = None,
    ) -> None:
        directory = self._module_dir(module_fingerprint)
        payload = compiled.to_payload()
        if self.format_version >= 2:
            payload = self._binary_payload(directory, payload, compiled.packed, "pack")
        self._write("module_pack", directory / "pack.json", payload)
        if module is not None:
            self._write_module_meta(module_fingerprint, module)

    # -- verification out-sets --------------------------------------------------
    def load_out_sets(
        self, fingerprint: str, workflow: "Workflow", key: tuple
    ) -> dict | None:
        path = self._dir(fingerprint) / f"outsets-{_key_digest(key)}.json"
        payload = self._read("out_sets", path)
        if payload is None:
            return None
        try:
            module = workflow.module(payload["module"])
            in_domains = [a.domain.values for a in module.input_schema]
            out_domains = [a.domain.values for a in module.output_schema]
            return {
                _decode_row(in_domains, key_row): {
                    _decode_row(out_domains, out_row) for out_row in out_rows
                }
                for key_row, out_rows in payload["entries"]
            }
        except Exception:
            self.hits["out_sets"] -= 1
            self.misses["out_sets"] += 1
            return None

    def save_out_sets(
        self,
        fingerprint: str,
        workflow: "Workflow",
        key: tuple,
        module_name: str,
        out_sets: Mapping[tuple, set],
    ) -> None:
        module = workflow.module(module_name)
        in_indexers = [
            {value: idx for idx, value in enumerate(a.domain.values)}
            for a in module.input_schema
        ]
        out_indexers = [
            {value: idx for idx, value in enumerate(a.domain.values)}
            for a in module.output_schema
        ]
        entries = sorted(
            [
                [indexer[v] for indexer, v in zip(in_indexers, key_row)],
                sorted(
                    [indexer[v] for indexer, v in zip(out_indexers, out_row)]
                    for out_row in out_rows
                ),
            ]
            for key_row, out_rows in out_sets.items()
        )
        path = self._dir(fingerprint) / f"outsets-{_key_digest(key)}.json"
        self._write("out_sets", path, {"module": module_name, "entries": entries})

    # -- solve results ----------------------------------------------------------
    def load_result(self, fingerprint: str, key: tuple) -> dict | None:
        path = self._dir(fingerprint) / f"result-{_key_digest(key)}.json"
        payload = self._read("result", path)
        if isinstance(payload, dict):
            return payload
        if payload is not None:
            self.hits["result"] -= 1
            self.misses["result"] += 1
        return None

    def save_result(self, fingerprint: str, key: tuple, record: Mapping) -> None:
        path = self._dir(fingerprint) / f"result-{_key_digest(key)}.json"
        self._write("result", path, dict(record))

    # -- popularity (meta tier) -------------------------------------------------
    def bump_popularity(self, fingerprint: str, by: int = 1) -> int:
        """Add ``by`` requests to a workflow entry's persistent popularity.

        The counter lives in the entry's ``meta.json`` so it survives
        restarts and rides the same GC policy as the artifacts it ranks.
        Read-modify-write without a cross-process lock: concurrent bumpers
        may lose increments, which ranking tolerates (popularity is a
        heuristic, not an invariant).  Returns the new count.
        """
        meta_path = self._dir(fingerprint) / "meta.json"
        meta = self._read_raw(meta_path)
        meta.setdefault("fingerprint", fingerprint)
        meta["popularity"] = int(meta.get("popularity", 0) or 0) + int(by)
        self._write(None, meta_path, meta)
        return meta["popularity"]

    def popularity(self, fingerprint: str) -> int:
        """The persisted request count for one workflow entry (0 if none)."""
        meta = self._read_raw(self._dir(fingerprint) / "meta.json")
        return int(meta.get("popularity", 0) or 0)

    def popular_workflows(self, k: int) -> list[tuple[str, int, dict]]:
        """The ``k`` most-requested workflow entries that can be rebuilt.

        ``(fingerprint, popularity, workflow_payload)`` tuples, most
        popular first (fingerprint breaks ties deterministically).  Entries
        without a serialized payload or without any recorded popularity are
        skipped — they cannot be warmed, or nobody asked for them.
        """
        ranked: list[tuple[int, str, dict]] = []
        # Workflow shards are two hex characters, so the glob can never
        # descend into the "modules" tier.
        for meta_path in self.root.glob("??/*/meta.json"):
            meta = self._read_raw(meta_path)
            payload = meta.get("workflow_payload")
            count = int(meta.get("popularity", 0) or 0)
            if not isinstance(payload, dict) or count <= 0:
                continue
            fingerprint = str(meta.get("fingerprint") or meta_path.parent.name)
            ranked.append((count, fingerprint, payload))
        ranked.sort(key=lambda item: (-item[0], item[1]))
        return [(fp, count, payload) for count, fp, payload in ranked[: max(0, k)]]

    def stored_requirement_points(self, fingerprint: str) -> list[tuple[int, str, str]]:
        """Every ``(gamma, kind, backend)`` with a stored requirement doc.

        Parsed from the entry's ``req-g<gamma>-<kind>-<backend>.json``
        filenames; lets warm-up preload exactly the points past traffic
        actually asked for instead of guessing a grid.
        """
        points: list[tuple[int, str, str]] = []
        for path in self._dir(fingerprint).glob("req-g*.json"):
            stem = path.name[len("req-g") : -len(".json")]
            gamma_text, _, rest = stem.partition("-")
            kind, _, backend = rest.partition("-")
            try:
                gamma = int(gamma_text)
            except ValueError:
                continue
            if kind and backend:
                points.append((gamma, kind, backend))
        return sorted(points)

    # -- maintenance ------------------------------------------------------------
    @staticmethod
    def _is_temp(path: Path) -> bool:
        """An in-flight atomic-write temp file (``<name>.tmp-<pid>``)?"""
        return ".tmp-" in path.name

    def _artifact_files(self) -> list[Path]:
        """Every persisted artifact under the root, temp files excluded.

        Since format v2 this includes the binary ``*.codes.*`` sidecars —
        they must ride the same GC, stats and LRU accounting as the JSON
        documents that reference them.
        """
        return [
            path
            for path in self.root.rglob("*")
            if path.is_file() and not self._is_temp(path)
        ]

    def disk_stats(self) -> dict[str, Any]:
        """What the store directory holds on disk (for ``repro store stats``).

        Counts bytes and files per artifact kind, per tier (workflow
        entries vs the shared ``modules/`` tier), and per on-disk entry
        format version.  Purely observational — no counters move.
        """
        kinds = {
            "meta": 0,
            "relation": 0,
            "pack": 0,
            "requirements": 0,
            "out_sets": 0,
            "results": 0,
            "other": 0,
        }
        tiers = {
            tier: {"entries": 0, "files": 0, "bytes": 0}
            for tier in ("workflow", "modules")
        }
        total_bytes = 0
        files = 0
        workflow_entries: set[Path] = set()
        module_entries: set[Path] = set()
        module_root = self.root / "modules"
        for path in self._artifact_files():
            files += 1
            try:
                size = path.stat().st_size
            except OSError:
                continue
            total_bytes += size
            entry = path.parent
            if module_root in entry.parents or entry == module_root:
                module_entries.add(entry)
                tier = tiers["modules"]
            else:
                workflow_entries.add(entry)
                tier = tiers["workflow"]
            tier["files"] += 1
            tier["bytes"] += size
            name = path.name
            if name == "meta.json":
                kinds["meta"] += 1
            elif name == "relation.json" or name.startswith("relation.codes"):
                kinds["relation"] += 1
            elif name == "pack.json" or name.startswith("pack.codes"):
                kinds["pack"] += 1
            elif name.startswith("req-"):
                kinds["requirements"] += 1
            elif name.startswith("outsets-"):
                kinds["out_sets"] += 1
            elif name.startswith("result-"):
                kinds["results"] += 1
            else:
                kinds["other"] += 1
        tiers["workflow"]["entries"] = len(workflow_entries)
        tiers["modules"]["entries"] = len(module_entries)
        format_versions: dict[str, int] = {}
        for entry in workflow_entries | module_entries:
            meta = self._read_raw(entry / "meta.json")
            version = str(int(meta.get("format_version", 1) or 1))
            format_versions[version] = format_versions.get(version, 0) + 1
        return {
            "root": str(self.root),
            "format_version": self.format_version,
            "format_versions": format_versions,
            "bytes": total_bytes,
            "files": files,
            "workflow_entries": len(workflow_entries),
            "module_entries": len(module_entries),
            "tiers": tiers,
            "by_kind": kinds,
        }

    def gc(self, max_bytes: int) -> dict[str, int]:
        """Prune the store to at most ``max_bytes``, LRU by file mtime.

        Oldest-touched artifacts go first; in-flight ``*.tmp-*`` files are
        never deleted (a concurrent writer may be about to publish them),
        and emptied entry directories are removed.  Artifacts are always
        re-derivable (the store is a cache, never the source of truth), so
        eviction can never lose information.  Returns a summary of what was
        deleted and kept.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries: list[tuple[float, int, Path]] = []
        for path in self._artifact_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first
        total = sum(size for _, size, _ in entries)
        deleted_files = 0
        freed = 0
        for _, size, path in entries:
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            deleted_files += 1
            freed += size
        # Sweep out directories the deletions emptied (entry dirs, shards).
        for directory in sorted(
            (p for p in self.root.rglob("*") if p.is_dir()),
            key=lambda p: len(p.parts),
            reverse=True,
        ):
            try:
                directory.rmdir()  # only succeeds when empty
            except OSError:
                pass
        return {
            "deleted_files": deleted_files,
            "freed_bytes": freed,
            "kept_bytes": total - freed,
            "max_bytes": max_bytes,
        }

    # -- migration --------------------------------------------------------------
    def _migrate_pack_doc(self, directory: Path, doc: dict) -> dict:
        """The v2 form of one v1 pack document (sidecar written as a side
        effect).  Purely structural — codes and layout come from the stored
        document, so the rewritten entry decodes to byte-identical payloads
        without needing the live workflow or module."""
        pack = doc["pack"]
        codes = pack["codes"]
        if not isinstance(codes, list):
            raise ValueError("not a v1 pack document")
        descriptor, blob = binpack.encode_codes(
            [int(code) for code in codes], int(pack["layout"]["total_bits"])
        )
        self._write_code_sidecar(directory, descriptor, blob, "pack")
        new_doc: dict[str, Any] = {
            "format": FORMAT_VERSION,
            "pack": {"layout": pack["layout"], "codes": descriptor},
        }
        for key, value in doc.items():
            if key not in ("pack", "format"):
                new_doc[key] = value
        return new_doc

    def _migrate_entry(
        self, entry: Path, workflow_tier: bool, summary: dict[str, int]
    ) -> None:
        pack_path = entry / "pack.json"
        doc = self._read_raw(pack_path)
        if doc:
            if int(doc.get("format", 1) or 1) >= FORMAT_VERSION:
                summary["already_current"] += 1
            else:
                try:
                    new_doc = self._migrate_pack_doc(entry, doc)
                except Exception:
                    summary["failed"] += 1
                else:
                    self._write(None, pack_path, new_doc)
                    summary["packs_migrated"] += 1
        if workflow_tier:
            relation_path = entry / "relation.json"
            relation_doc = self._read_raw(relation_path)
            if relation_doc and "rows" in relation_doc:
                # A v1 relation document carries domain *indices* only; the
                # bit layout needs the schema, which the entry's meta can
                # rebuild.  Entries without a serialized workflow stay v1 —
                # readers accept both, so nothing is lost.
                meta = self._read_raw(entry / "meta.json")
                workflow_payload = meta.get("workflow_payload")
                if isinstance(workflow_payload, dict):
                    try:
                        from ..workloads.serialization import workflow_from_dict

                        schema = workflow_from_dict(workflow_payload).schema
                        relation = relation_from_dict(schema, relation_doc)
                        payload = self._binary_payload(
                            entry, {}, PackedRelation.from_relation(relation),
                            "relation",
                        )
                    except Exception:
                        summary["failed"] += 1
                    else:
                        self._write(None, relation_path, payload)
                        summary["relations_migrated"] += 1
                else:
                    summary["skipped"] += 1
        meta_path = entry / "meta.json"
        meta = self._read_raw(meta_path)
        if meta and int(meta.get("format_version", 1) or 1) != FORMAT_VERSION:
            meta["format_version"] = FORMAT_VERSION
            self._write(None, meta_path, meta)

    def migrate(self) -> dict[str, int]:
        """Upgrade every v1 artifact under the root to format v2, in place.

        Per-artifact atomic (the same tmp-file + ``os.replace`` protocol as
        normal writes), so readers racing the migration see either the old
        or the new complete document — and since readers accept both
        formats, a half-migrated store serves hits throughout.  Idempotent:
        already-v2 entries are counted and left untouched.  Corrupt
        documents are skipped (``failed``), never deleted — they were
        misses before and stay misses.  Returns a summary of what moved.
        """
        summary = {
            "entries": 0,
            "packs_migrated": 0,
            "relations_migrated": 0,
            "already_current": 0,
            "skipped": 0,
            "failed": 0,
        }
        for entry in sorted(p for p in self.root.glob("??/*") if p.is_dir()):
            summary["entries"] += 1
            self._migrate_entry(entry, True, summary)
        for entry in sorted(p for p in self.root.glob("modules/??/*") if p.is_dir()):
            summary["entries"] += 1
            self._migrate_entry(entry, False, summary)
        return summary

    # -- bookkeeping ------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Flat counter snapshot (per category plus totals)."""
        flat: dict[str, int] = {}
        for category in _CATEGORIES:
            flat[f"{category}_hits"] = self.hits[category]
            flat[f"{category}_misses"] = self.misses[category]
            flat[f"{category}_writes"] = self.writes[category]
        flat["hits"] = sum(self.hits.values())
        flat["misses"] = sum(self.misses.values())
        flat["writes"] = sum(self.writes.values())
        return flat

    def reset_stats(self) -> None:
        for category in _CATEGORIES:
            self.hits[category] = 0
            self.misses[category] = 0
            self.writes[category] = 0
