"""Persistent, content-addressed store for derived Secure-View artifacts.

Everything expensive about a Secure-View instance is a pure function of the
workflow's *content* plus a handful of small parameters (Γ, requirement
kind, backend, visible set, solver, seed).  A :class:`DerivationStore`
therefore keys every artifact by the workflow's canonical-serialization
fingerprint (:func:`repro.workloads.workflow_fingerprint`) and persists it
as a plain JSON document under::

    <root>/<fp[:2]>/<fingerprint>/
        meta.json                      # human-readable instance summary
        relation.json                  # provenance relation (domain-index rows)
        pack.json                      # packed kernel tables (bit codes)
        req-g<gamma>-<kind>-<backend>.json
        outsets-<keydigest>.json       # one per (module, view, stop_at, backend)
        result-<keydigest>.json        # one per (backend, gamma, kind, solver,
                                       #          seed, verify) solve cell

so a warm store lets a *different process* — a sweep worker, tomorrow's CLI
invocation, a CI re-run — skip requirement derivation, provenance
materialization, kernel packing, out-set enumeration, and even whole solver
runs.  The store is the persistent back tier of the two-tier
:class:`~repro.engine.cache.DerivationCache`; the cache owns the bounded
in-memory front and probes the store on every memory miss.

Concurrency: writes go to a per-process temp file followed by an atomic
``os.replace``, so concurrent sweep workers racing on one key each publish
a complete document and the last writer wins (all writers derive identical
content, because keys are content hashes).  Corrupt or structurally
incompatible documents are treated as misses and rewritten, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..kernel import CompiledWorkflow
from ..workloads.serialization import (
    relation_from_dict,
    relation_to_dict,
    requirement_from_dict,
    requirement_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.relation import Relation
    from ..core.requirements import RequirementList
    from ..core.workflow import Workflow

__all__ = ["DerivationStore", "ResultKey", "OutSetKey"]

#: Categories the store tracks hit/miss/write counters for.
_CATEGORIES = ("requirements", "relation", "pack", "out_sets", "result")


def _decode_row(domains: list, row: list) -> tuple:
    """Map stored domain indices back to values, rejecting out-of-range ones.

    Explicit bounds check: Python's negative indexing would otherwise make a
    corrupt ``-1`` silently decode to the last domain value instead of
    degrading to a store miss.
    """
    values = []
    for domain, index in zip(domains, row):
        index = int(index)
        if not 0 <= index < len(domain):
            raise ValueError(f"stored domain index {index} out of range")
        values.append(domain[index])
    return tuple(values)


def _key_digest(parts: tuple) -> str:
    """Short stable digest of a JSON-able key tuple (used in filenames)."""
    canonical = json.dumps(parts, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def ResultKey(
    backend: str,
    gamma: int,
    kind: str,
    solver: str,
    seed: int | None,
    verify: bool = False,
) -> tuple:
    """The parameters that (with the fingerprint) identify one solve cell."""
    return ("result", backend, gamma, kind, solver, seed, verify)


def OutSetKey(
    module_name: str,
    visible: frozenset[str],
    hidden_public_modules: frozenset[str],
    stop_at: int | None,
    backend: str,
) -> tuple:
    """The parameters identifying one out-set enumeration."""
    return (
        "outsets",
        module_name,
        sorted(visible),
        sorted(hidden_public_modules),
        stop_at,
        backend,
    )


class DerivationStore:
    """Disk-backed persistence for derived artifacts, keyed by content.

    Parameters
    ----------
    root:
        Directory to persist under; created (with parents) if absent.

    The store never loads anything it cannot validate: relations are decoded
    against the live workflow schema, packs are checked for bit-layout
    compatibility, and any JSON or structural error degrades to a miss.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits: dict[str, int] = {category: 0 for category in _CATEGORIES}
        self.misses: dict[str, int] = {category: 0 for category in _CATEGORIES}
        self.writes: dict[str, int] = {category: 0 for category in _CATEGORIES}

    # -- paths and raw IO -------------------------------------------------------
    def _dir(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / fingerprint

    def _read(self, category: str, path: Path) -> Any | None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses[category] += 1
            return None
        self.hits[category] += 1
        return payload

    def _write(self, category: str | None, path: Path, payload: Any) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # A read-only or vanished store directory must never kill a
            # solve; persistence is best-effort by design.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        if category is not None:
            self.writes[category] += 1

    def _write_meta(self, fingerprint: str, workflow: "Workflow") -> None:
        meta_path = self._dir(fingerprint) / "meta.json"
        if meta_path.exists():
            return
        self._write(
            None,  # meta is bookkeeping, not a counted artifact
            meta_path,
            {
                "fingerprint": fingerprint,
                "workflow": workflow.name,
                "modules": len(workflow),
                "attributes": len(workflow.attribute_names),
            },
        )

    # -- requirements -----------------------------------------------------------
    def load_requirements(
        self, fingerprint: str, gamma: int, kind: str, backend: str
    ) -> dict[str, "RequirementList"] | None:
        path = self._dir(fingerprint) / f"req-g{gamma}-{kind}-{backend}.json"
        payload = self._read("requirements", path)
        if payload is None:
            return None
        try:
            return {
                item["module"]: requirement_from_dict(item)
                for item in payload["requirements"]
            }
        except (KeyError, TypeError, ValueError):
            self.hits["requirements"] -= 1
            self.misses["requirements"] += 1
            return None

    def save_requirements(
        self,
        fingerprint: str,
        gamma: int,
        kind: str,
        backend: str,
        requirements: Mapping[str, "RequirementList"],
        workflow: "Workflow | None" = None,
    ) -> None:
        path = self._dir(fingerprint) / f"req-g{gamma}-{kind}-{backend}.json"
        self._write(
            "requirements",
            path,
            {
                "gamma": gamma,
                "kind": kind,
                "backend": backend,
                # Insertion order (workflow module order) is preserved so a
                # store-served mapping is indistinguishable from a freshly
                # derived one — LP/IP constraint ordering, and therefore
                # tie-breaking among equal-cost optima, must not change.
                "requirements": [
                    requirement_to_dict(requirement)
                    for requirement in requirements.values()
                ],
            },
        )
        if workflow is not None:
            self._write_meta(fingerprint, workflow)

    # -- provenance relation ----------------------------------------------------
    def load_relation(
        self, fingerprint: str, workflow: "Workflow"
    ) -> "Relation | None":
        payload = self._read("relation", self._dir(fingerprint) / "relation.json")
        if payload is None:
            return None
        try:
            return relation_from_dict(workflow.schema, payload)
        except Exception:
            self.hits["relation"] -= 1
            self.misses["relation"] += 1
            return None

    def save_relation(
        self, fingerprint: str, relation: "Relation", workflow: "Workflow | None" = None
    ) -> None:
        self._write(
            "relation",
            self._dir(fingerprint) / "relation.json",
            relation_to_dict(relation),
        )
        if workflow is not None:
            self._write_meta(fingerprint, workflow)

    # -- compiled kernel packs --------------------------------------------------
    def load_pack(
        self, fingerprint: str, workflow: "Workflow", relation: "Relation"
    ) -> CompiledWorkflow | None:
        payload = self._read("pack", self._dir(fingerprint) / "pack.json")
        if payload is None:
            return None
        try:
            return CompiledWorkflow.from_payload(workflow, relation, payload)
        except Exception:
            self.hits["pack"] -= 1
            self.misses["pack"] += 1
            return None

    def save_pack(self, fingerprint: str, compiled: CompiledWorkflow) -> None:
        self._write(
            "pack", self._dir(fingerprint) / "pack.json", compiled.to_payload()
        )

    # -- verification out-sets --------------------------------------------------
    def load_out_sets(
        self, fingerprint: str, workflow: "Workflow", key: tuple
    ) -> dict | None:
        path = self._dir(fingerprint) / f"outsets-{_key_digest(key)}.json"
        payload = self._read("out_sets", path)
        if payload is None:
            return None
        try:
            module = workflow.module(payload["module"])
            in_domains = [a.domain.values for a in module.input_schema]
            out_domains = [a.domain.values for a in module.output_schema]
            return {
                _decode_row(in_domains, key_row): {
                    _decode_row(out_domains, out_row) for out_row in out_rows
                }
                for key_row, out_rows in payload["entries"]
            }
        except Exception:
            self.hits["out_sets"] -= 1
            self.misses["out_sets"] += 1
            return None

    def save_out_sets(
        self,
        fingerprint: str,
        workflow: "Workflow",
        key: tuple,
        module_name: str,
        out_sets: Mapping[tuple, set],
    ) -> None:
        module = workflow.module(module_name)
        in_indexers = [
            {value: idx for idx, value in enumerate(a.domain.values)}
            for a in module.input_schema
        ]
        out_indexers = [
            {value: idx for idx, value in enumerate(a.domain.values)}
            for a in module.output_schema
        ]
        entries = sorted(
            [
                [indexer[v] for indexer, v in zip(in_indexers, key_row)],
                sorted(
                    [indexer[v] for indexer, v in zip(out_indexers, out_row)]
                    for out_row in out_rows
                ),
            ]
            for key_row, out_rows in out_sets.items()
        )
        path = self._dir(fingerprint) / f"outsets-{_key_digest(key)}.json"
        self._write("out_sets", path, {"module": module_name, "entries": entries})

    # -- solve results ----------------------------------------------------------
    def load_result(self, fingerprint: str, key: tuple) -> dict | None:
        path = self._dir(fingerprint) / f"result-{_key_digest(key)}.json"
        payload = self._read("result", path)
        if isinstance(payload, dict):
            return payload
        if payload is not None:
            self.hits["result"] -= 1
            self.misses["result"] += 1
        return None

    def save_result(self, fingerprint: str, key: tuple, record: Mapping) -> None:
        path = self._dir(fingerprint) / f"result-{_key_digest(key)}.json"
        self._write("result", path, dict(record))

    # -- bookkeeping ------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Flat counter snapshot (per category plus totals)."""
        flat: dict[str, int] = {}
        for category in _CATEGORIES:
            flat[f"{category}_hits"] = self.hits[category]
            flat[f"{category}_misses"] = self.misses[category]
            flat[f"{category}_writes"] = self.writes[category]
        flat["hits"] = sum(self.hits.values())
        flat["misses"] = sum(self.misses.values())
        flat["writes"] = sum(self.writes.values())
        return flat

    def reset_stats(self) -> None:
        for category in _CATEGORIES:
            self.hits[category] = 0
            self.misses[category] = 0
            self.writes[category] = 0
