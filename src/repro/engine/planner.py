"""The :class:`Planner` — one entry point for solving Secure-View instances.

A planner owns a workflow, the privacy target Γ, and a shared
:class:`~repro.engine.cache.DerivationCache`.  It derives requirement lists
**once**, memoizes them (and the provenance relation and verification
out-sets) in the cache, and dispatches any registered algorithm through a
uniform interface::

    planner = Planner(workflow, gamma=2, kind="set")
    result = planner.solve()                        # auto-selected solver
    result = planner.solve(solver="exact", verify=True)
    result = planner.solve(solver="lp_rounding", seed=7)
    result = planner.solve(costs={"a3": 10.0})      # what-if cost override

Because the cache is shared across ``solve`` calls (and across planners,
when one cache is passed around), a multi-solver sweep pays the exponential
requirement derivation a single time — the comparative benchmarks measure
severalfold wall-clock wins on sweeps that previously re-derived per solver.
"""

from __future__ import annotations

import random
import time
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..core.module import Module
from ..core.requirements import RequirementList, SetRequirementList
from ..core.secure_view import SecureViewProblem
from ..core.view import SecureViewSolution
from ..core.workflow import Workflow
from ..exceptions import RequirementError, WorkflowError
from ..kernel import resolve_backend
from .cache import DerivationCache
from .registry import SolverRegistry, SolverSpec, default_registry
from .result import PrivacyCertificate, SolveRequest, SolveResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import DerivationStore

__all__ = ["Planner"]


class Planner:
    """Facade over requirement derivation, solver dispatch and verification.

    Parameters
    ----------
    workflow, gamma:
        The workflow to secure and the privacy target Γ.
    kind:
        Requirement-list kind to derive (``"set"`` or ``"cardinality"``);
        ignored when explicit ``requirements`` are supplied.
    requirements:
        Pre-built requirement lists (e.g. from a problem file).  When
        omitted they are derived from standalone analysis on first use and
        memoized in the cache.
    hidable_attributes, allow_privatization:
        Forwarded to :class:`SecureViewProblem`.
    cache:
        A shared :class:`DerivationCache`; a fresh one is created when
        omitted.  Pass one cache to several planners to share derivations
        across a parameter sweep.
    store:
        A persistent :class:`~repro.engine.store.DerivationStore` (or a
        directory path for one) to attach as the cache's back tier, so
        derivations survive across processes and runs.  When both ``cache``
        and ``store`` are given, the store is attached to the cache unless
        the cache already has one.
    registry:
        Solver registry to dispatch into; defaults to the process-wide one.
    backend:
        Privacy-analysis backend: ``"kernel"`` (default) compiles each
        module's relation into packed bitmask tables exactly once per
        instance and runs derivation and verification on them;
        ``"reference"`` keeps the brute-force enumerators as the oracle.
    """

    def __init__(
        self,
        workflow: Workflow,
        gamma: int,
        *,
        kind: str = "set",
        requirements: Mapping[str, RequirementList] | None = None,
        hidable_attributes: frozenset[str] | None = None,
        allow_privatization: bool = True,
        cache: DerivationCache | None = None,
        store: "DerivationStore | str | None" = None,
        registry: SolverRegistry | None = None,
        backend: str | None = None,
    ) -> None:
        if kind not in ("set", "cardinality"):
            raise RequirementError(f"unknown requirement kind {kind!r}")
        self.workflow = workflow
        self.gamma = gamma
        self.kind = kind
        self.backend = resolve_backend(backend)
        self.hidable_attributes = hidable_attributes
        self.allow_privatization = allow_privatization
        self.cache = cache if cache is not None else DerivationCache()
        if store is not None and self.cache.store is None:
            if isinstance(store, str):
                from .store import DerivationStore

                store = DerivationStore(store)
            self.cache.attach_store(store)
        self.registry = registry if registry is not None else default_registry()
        if requirements is not None:
            first = next(iter(requirements.values()))
            self.kind = (
                "set" if isinstance(first, SetRequirementList) else "cardinality"
            )
            self.cache.seed_requirements(workflow, gamma, self.kind, requirements)
        self._problems: dict[object, SecureViewProblem] = {}
        self._workflows: dict[object, Workflow] = {None: workflow}

    @classmethod
    def from_problem(
        cls,
        problem: SecureViewProblem,
        *,
        cache: DerivationCache | None = None,
        store: "DerivationStore | str | None" = None,
        registry: SolverRegistry | None = None,
        backend: str | None = None,
    ) -> "Planner":
        """Wrap an existing :class:`SecureViewProblem` (no re-derivation)."""
        planner = cls(
            problem.workflow,
            problem.gamma,
            requirements=problem.requirements,
            hidable_attributes=problem.hidable_attributes,
            allow_privatization=problem.allow_privatization,
            cache=cache,
            store=store,
            registry=registry,
            backend=backend,
        )
        planner._problems[None] = problem
        return planner

    # -- incremental evolution --------------------------------------------------
    def evolve(
        self,
        *,
        add: Iterable[Module] = (),
        remove: Iterable[str] = (),
        replace: Mapping[str, Module] | None = None,
        gamma: int | None = None,
        kind: str | None = None,
        costs: Mapping[str, float] | None = None,
    ) -> "Planner":
        """A planner for an edited workflow that re-derives only what changed.

        Builds a new workflow by applying the edits to this planner's
        workflow — ``remove`` drops modules by name, ``replace`` swaps
        modules in place (keyed by the name being replaced), ``add`` appends
        new modules — and returns a new :class:`Planner` over it **sharing
        this planner's cache** (and therefore its store, registry and
        backend).  Because every requirement derivation is keyed by module
        content fingerprint, the new planner's first solve re-derives
        exactly the modules whose content changed and reuses everything else
        (``CacheStats.reused_modules`` / ``rederived_modules`` show the
        split).  Workflow-level artifacts — the provenance relation, packed
        workflow tables and verification out-sets — are re-keyed by the new
        workflow fingerprint and recomputed when verification asks for them.

        ``gamma`` / ``kind`` evolve the privacy target instead of (or along
        with) the topology; ``costs`` applies a what-if cost override, which
        never invalidates module artifacts (fingerprints exclude costs).
        Explicitly seeded requirement lists are *not* carried over: they are
        not re-derivable from content, so an evolved planner falls back to
        derivation for every private module of the new workflow.
        """
        replacements = dict(replace or {})
        removed = set(remove)
        added = tuple(add)
        known = set(self.workflow.module_names)
        unknown = (removed | set(replacements)) - known
        if unknown:
            raise WorkflowError(f"evolve: unknown modules {sorted(unknown)!r}")
        overlap = removed & set(replacements)
        if overlap:
            raise WorkflowError(
                f"evolve: modules both removed and replaced {sorted(overlap)!r}"
            )
        modules: list[Module] = []
        for module in self.workflow.modules:
            if module.name in removed:
                continue
            modules.append(replacements.get(module.name, module))
        modules.extend(added)
        if not modules:
            raise WorkflowError("evolve: the edited workflow has no modules left")
        if not (removed or replacements or added):
            # A pure Γ/kind/cost evolution keeps the same workflow object,
            # so identity-keyed workflow-level entries (provenance relation,
            # packed tables, out-sets) stay warm in the shared cache.
            workflow = self.workflow
        else:
            workflow = Workflow(modules, name=self.workflow.name)
        if costs:
            workflow = workflow.with_attribute_costs(dict(costs))
        hidable = self.hidable_attributes
        if hidable is not None:
            hidable = frozenset(hidable) & frozenset(workflow.attribute_names)
        return Planner(
            workflow,
            self.gamma if gamma is None else gamma,
            kind=self.kind if kind is None else kind,
            hidable_attributes=hidable,
            allow_privatization=self.allow_privatization,
            cache=self.cache,
            registry=self.registry,
            backend=self.backend,
        )

    # -- instance assembly ------------------------------------------------------
    def _cost_key(self, costs: Mapping[str, float] | None):
        if costs is None:
            return None
        return frozenset(costs.items())

    def problem(self, costs: Mapping[str, float] | None = None) -> SecureViewProblem:
        """The Secure-View instance, derived once and memoized.

        ``costs`` overrides per-attribute hiding costs without re-deriving
        anything: requirement lists depend only on workflow structure and Γ,
        so the cached derivation is reused for every cost scenario.
        """
        key = self._cost_key(costs)
        cached = self._problems.get(key)
        if cached is not None:
            return cached
        requirements = self.cache.requirements(
            self.workflow, self.gamma, self.kind, backend=self.backend
        )
        workflow = self._workflows.get(key)
        if workflow is None:
            workflow = self.workflow.with_attribute_costs(dict(costs or {}))
            self._workflows[key] = workflow
        problem = SecureViewProblem(
            workflow,
            self.gamma,
            requirements,
            hidable_attributes=self.hidable_attributes,
            allow_privatization=self.allow_privatization,
        )
        self._problems[key] = problem
        return problem

    # -- solver discovery -------------------------------------------------------
    def solvers(self, applicable_only: bool = True) -> list[SolverSpec]:
        """Registered solvers, optionally filtered to this instance."""
        if applicable_only:
            return self.registry.applicable(self.problem())
        return self.registry.specs()

    def resolve(self, solver: str = "auto") -> SolverSpec:
        """The spec ``solve`` would dispatch to for this instance."""
        if solver == "auto":
            return self.registry.select(self.problem())
        return self.registry.get(solver)

    # -- solving ----------------------------------------------------------------
    def solve(
        self,
        solver: str = "auto",
        *,
        seed: int | None = None,
        rng: random.Random | None = None,
        costs: Mapping[str, float] | None = None,
        local_search: bool | Sequence[str] = False,
        verify: bool = False,
        **options: object,
    ) -> SolveResult:
        """Solve the instance with one registered algorithm; see ``execute``."""
        return self.execute(
            SolveRequest(
                solver=solver,
                seed=seed,
                rng=rng,
                costs=costs,
                local_search=local_search,
                verify=verify,
                options=dict(options),
            )
        )

    def execute(self, request: SolveRequest) -> SolveResult:
        """Run one :class:`SolveRequest` end to end.

        Derivation (cached) → solver dispatch (timed) → optional local-search
        post-processing → feasibility validation → optional Γ-privacy
        certificate (cached out-set enumeration).
        """
        problem = self.problem(costs=request.costs)
        if request.solver == "auto":
            spec = self.registry.select(problem)
        else:
            spec = self.registry.get(request.solver)

        kwargs = dict(request.options)
        if request.seed is not None:
            kwargs.setdefault("seed", request.seed)
        if request.rng is not None:
            kwargs.setdefault("rng", request.rng)
        kwargs = spec.accepted_kwargs(kwargs)

        start = time.perf_counter()
        solution = spec.fn(problem, **kwargs)
        if request.local_search:
            from ..optim.local_search import improve_solution

            passes = (
                ("prune", "swap")
                if request.local_search is True
                else tuple(request.local_search)
            )
            solution = improve_solution(problem, solution, passes=passes)
        seconds = time.perf_counter() - start
        problem.validate_solution(solution)

        certificate = None
        if request.verify:
            certificate = self.verify(solution, problem=problem)
        return SolveResult(
            solver=spec.name,
            requested=request.solver,
            solution=solution,
            cost=problem.solution_cost(
                solution.hidden_attributes, solution.privatized_modules
            ),
            guarantee=spec.guarantee_for(problem),
            seconds=seconds,
            certificate=certificate,
            cache_stats=self.cache.stats(),
        )

    # -- verification -----------------------------------------------------------
    def verify(
        self,
        solution: SecureViewSolution,
        problem: SecureViewProblem | None = None,
    ) -> PrivacyCertificate:
        """Brute-force Γ-privacy certificate for a solution's view.

        Enumerates, per private module, the out-sets of Definition 5/6 under
        the solution's visible attributes (with early termination at Γ) and
        reports the weakest observed level.  Out-sets are memoized in the
        shared cache, so verifying several solutions with the same view —
        common in solver comparisons — enumerates worlds once.
        """
        problem = problem if problem is not None else self.problem()
        visible = frozenset(solution.visible_attributes)
        privatized = frozenset(solution.privatized_modules)
        levels: dict[str, int] = {}
        for module in problem.workflow.private_modules:
            out_sets = self.cache.module_out_sets(
                problem.workflow,
                module.name,
                visible,
                privatized,
                stop_at=self.gamma,
                backend=self.backend,
            )
            levels[module.name] = (
                min(len(out) for out in out_sets.values()) if out_sets else 0
            )
        return PrivacyCertificate(
            gamma=self.gamma,
            ok=all(level >= self.gamma for level in levels.values()),
            module_levels=levels,
        )
