"""Shared derivation cache for the Secure-View engine.

Everything expensive about a Secure-View instance happens *before* and
*after* the LP/greedy/exact solve itself:

* **requirement derivation** — ``derive_workflow_requirements`` enumerates,
  per private module, every hidden subset (exponential in the module arity)
  and, for cardinality lists, every (α, β) combination of attribute choices;
* **provenance materialization** — the joint relation over all executions;
* **out-set verification** — the possible-worlds enumeration behind the
  Γ-privacy certificate (Definitions 5/6).

All three depend only on the workflow structure, Γ, and the requirement
kind — never on attribute costs or on which solver runs.  A
:class:`DerivationCache` therefore memoizes them once per (workflow, Γ,
kind) so a multi-solver sweep (``repro compare``, the engine benchmarks,
``analysis.experiments.compare_solvers``) pays the exponential enumeration
a single time instead of once per solver.  Hit/miss counters are kept per
category so benchmarks and tests can assert the sharing actually happened.

Since the bit-compiled privacy kernel (:mod:`repro.kernel`) became the
default backend, the cache also owns the **compiled form** of each
workflow: :meth:`DerivationCache.compiled_workflow` packs the provenance
relation into integer bitmask tables exactly once per workflow, and every
kernel-backed derivation and verification pass reuses the packed tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.possible_worlds import workflow_out_sets
from ..core.requirements import RequirementList, derive_workflow_requirements
from ..core.relation import Relation
from ..core.workflow import Workflow
from ..kernel import (
    VALID_BACKENDS,
    CompiledWorkflow,
    compile_workflow,
    resolve_backend,
)

__all__ = ["CacheStats", "DerivationCache"]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a :class:`DerivationCache`'s counters."""

    derivation_hits: int = 0
    derivation_misses: int = 0
    relation_hits: int = 0
    relation_misses: int = 0
    out_set_hits: int = 0
    out_set_misses: int = 0
    compile_hits: int = 0
    compile_misses: int = 0

    @property
    def hits(self) -> int:
        return (
            self.derivation_hits
            + self.relation_hits
            + self.out_set_hits
            + self.compile_hits
        )

    @property
    def misses(self) -> int:
        return (
            self.derivation_misses
            + self.relation_misses
            + self.out_set_misses
            + self.compile_misses
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "derivation_hits": self.derivation_hits,
            "derivation_misses": self.derivation_misses,
            "relation_hits": self.relation_hits,
            "relation_misses": self.relation_misses,
            "out_set_hits": self.out_set_hits,
            "out_set_misses": self.out_set_misses,
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
        }


@dataclass
class DerivationCache:
    """Memoizes requirement derivation, relations and out-set enumeration.

    Workflows are identified by object identity (they are mutable graph
    containers); the cache pins every workflow it has seen so an ``id()``
    can never be recycled while its entries are alive.  A cache may be
    shared freely across :class:`~repro.engine.planner.Planner` instances —
    e.g. one cache for a whole parameter sweep.
    """

    _workflows: dict[int, Workflow] = field(default_factory=dict)
    _requirements: dict[tuple, Mapping[str, RequirementList]] = field(
        default_factory=dict
    )
    _relations: dict[int, Relation] = field(default_factory=dict)
    _out_sets: dict[tuple, dict] = field(default_factory=dict)
    _compiled: dict[int, CompiledWorkflow] = field(default_factory=dict)
    derivation_hits: int = 0
    derivation_misses: int = 0
    relation_hits: int = 0
    relation_misses: int = 0
    out_set_hits: int = 0
    out_set_misses: int = 0
    compile_hits: int = 0
    compile_misses: int = 0

    def _pin(self, workflow: Workflow) -> int:
        key = id(workflow)
        self._workflows.setdefault(key, workflow)
        return key

    # -- kernel compilation -------------------------------------------------------
    def compiled_workflow(self, workflow: Workflow) -> CompiledWorkflow:
        """The bit-compiled form of the workflow, packed at most once.

        The packed tables (relation codes, per-module bitmasks, public
        functionality tables) are shared by every kernel-backed derivation
        and verification pass that goes through this cache.
        """
        key = self._pin(workflow)
        cached = self._compiled.get(key)
        if cached is not None:
            self.compile_hits += 1
            return cached
        self.compile_misses += 1
        compiled = compile_workflow(workflow, self.relation(workflow))
        self._compiled[key] = compiled
        return compiled

    # -- requirement derivation -------------------------------------------------
    def requirements(
        self,
        workflow: Workflow,
        gamma: int,
        kind: str,
        backend: str | None = None,
    ) -> Mapping[str, RequirementList]:
        """Requirement lists for every private module, derived at most once."""
        backend = resolve_backend(backend)
        key = (self._pin(workflow), gamma, kind, backend)
        cached = self._requirements.get(key)
        if cached is not None:
            self.derivation_hits += 1
            return cached
        self.derivation_misses += 1
        derived = derive_workflow_requirements(
            workflow, gamma, kind=kind, backend=backend
        )
        self._requirements[key] = derived
        return derived

    def seed_requirements(
        self,
        workflow: Workflow,
        gamma: int,
        kind: str,
        requirements: Mapping[str, RequirementList],
    ) -> None:
        """Pre-populate the cache with already-derived requirement lists.

        Used when a :class:`SecureViewProblem` arrives with its lists already
        attached (loaded from a problem file, built by a generator) so the
        engine never re-derives what the caller paid for.  Caller-provided
        lists are backend-independent, so they satisfy every backend.
        """
        pin = self._pin(workflow)
        for backend in VALID_BACKENDS:
            self._requirements.setdefault((pin, gamma, kind, backend), requirements)

    # -- provenance relation ----------------------------------------------------
    def relation(self, workflow: Workflow) -> Relation:
        """The workflow's provenance relation, materialized at most once."""
        key = self._pin(workflow)
        cached = self._relations.get(key)
        if cached is not None:
            self.relation_hits += 1
            return cached
        self.relation_misses += 1
        relation = workflow.provenance_relation()
        self._relations[key] = relation
        return relation

    # -- out-set enumeration (verification) -------------------------------------
    def module_out_sets(
        self,
        workflow: Workflow,
        module_name: str,
        visible: frozenset[str],
        hidden_public_modules: frozenset[str],
        stop_at: int | None,
        backend: str | None = None,
    ) -> dict:
        """``OUT_{x,W}`` for every input of one module, enumerated at most once."""
        backend = resolve_backend(backend)
        key = (
            self._pin(workflow),
            module_name,
            visible,
            hidden_public_modules,
            stop_at,
            backend,
        )
        cached = self._out_sets.get(key)
        if cached is not None:
            self.out_set_hits += 1
            return cached
        self.out_set_misses += 1
        if backend == "kernel":
            out_sets = self.compiled_workflow(workflow).module_out_sets(
                module_name,
                visible,
                hidden_public_modules=hidden_public_modules,
                stop_at=stop_at,
            )
        else:
            out_sets = workflow_out_sets(
                workflow,
                module_name,
                visible,
                hidden_public_modules=hidden_public_modules,
                relation=self.relation(workflow),
                stop_at=stop_at,
                backend=backend,
            )
        self._out_sets[key] = out_sets
        return out_sets

    # -- bookkeeping ------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss counters."""
        return CacheStats(
            derivation_hits=self.derivation_hits,
            derivation_misses=self.derivation_misses,
            relation_hits=self.relation_hits,
            relation_misses=self.relation_misses,
            out_set_hits=self.out_set_hits,
            out_set_misses=self.out_set_misses,
            compile_hits=self.compile_hits,
            compile_misses=self.compile_misses,
        )

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._workflows.clear()
        self._requirements.clear()
        self._relations.clear()
        self._out_sets.clear()
        self._compiled.clear()
        self.derivation_hits = self.derivation_misses = 0
        self.relation_hits = self.relation_misses = 0
        self.out_set_hits = self.out_set_misses = 0
        self.compile_hits = self.compile_misses = 0
