"""Two-tier derivation cache for the Secure-View engine.

Everything expensive about a Secure-View instance happens *before* and
*after* the LP/greedy/exact solve itself:

* **requirement derivation** — ``derive_workflow_requirements`` enumerates,
  per private module, every hidden subset (exponential in the module arity)
  and, for cardinality lists, every (α, β) combination of attribute choices;
* **provenance materialization** — the joint relation over all executions;
* **kernel compilation** — packing that relation into integer bitmask tables;
* **out-set verification** — the possible-worlds enumeration behind the
  Γ-privacy certificate (Definitions 5/6).

All of these depend only on the workflow structure, Γ, and the requirement
kind — never on attribute costs or on which solver runs.  A
:class:`DerivationCache` therefore memoizes them once per (workflow, Γ,
kind) so a multi-solver sweep (``repro compare``, ``repro sweep``, the
engine benchmarks, :mod:`repro.analysis.experiments`) pays the exponential
enumeration a single time instead of once per solver.

Since PR 3 the cache is **two-tier**:

* the **front** is a bounded in-memory table (FIFO eviction at
  :data:`MEMORY_LIMIT` entries per category), exactly as fast as before;
* the **back** is an optional persistent
  :class:`~repro.engine.store.DerivationStore`: on a front miss the cache
  probes the store by the workflow's content fingerprint, and on a true
  miss it derives and writes through.  A warm store therefore makes
  ``Planner.solve`` skip derivation entirely *across process boundaries* —
  sweep workers, repeated CLI runs, CI re-runs.

Since PR 4 requirement derivation is additionally **module-granular**: a
workflow's requirement mapping is assembled from per-module lookups keyed
by :func:`~repro.workloads.module_fingerprint` (module *content*, costs and
privacy flags excluded).  The per-module tables — requirement lists and
compiled module packs — are shared by every workflow the cache has seen and
by the store's ``modules/`` tier, so two workflows sharing nine of ten
modules derive the tenth only, and editing one module of a pipeline
re-derives exactly that module (``reused_modules`` / ``rederived_modules``
count it).  The workflow-level requirement entry is kept as a fast path on
top: a fully warm repeat is one lookup, not one per module.

Hit/miss counters are kept per category (including ``store_hits`` /
``store_misses`` for the back tier) so benchmarks and tests can assert the
sharing actually happened.

Since PR 5 every cache operation is **thread-safe**: lookups, derivations
and counter updates run under one reentrant lock, so a single cache can
back the long-lived solve service (:mod:`repro.service`), where many
handler threads solve against the same hot cache concurrently.  The lock
serializes *derivation*, not solving — solvers run outside the cache — and
the service's request coalescing keeps identical concurrent derivations
from queueing up behind each other in the first place.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..core.module import Module
from ..core.possible_worlds import workflow_out_sets
from ..core.requirements import RequirementList, derive_module_requirement
from ..core.relation import Relation
from ..core.workflow import Workflow
from ..kernel import (
    KERNEL,
    VALID_BACKENDS,
    CompiledModule,
    CompiledWorkflow,
    compile_module,
    compile_workflow,
    resolve_backend,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import DerivationStore

__all__ = ["CacheStats", "DerivationCache", "MEMORY_LIMIT"]

#: Bound on in-memory entries per artifact category (FIFO eviction).
MEMORY_LIMIT = 128

#: Bound on pinned workflows/modules.  Pins keep the objects behind the
#: ``id()``-keyed tables alive so an id can never be recycled while its
#: entries exist; evicting a pin therefore purges its entries with it.
#: Long-lived processes (the solve service) would otherwise grow without
#: bound as distinct instances stream past.  Workflows with *seeded*
#: requirement lists are exempt — those lists are not re-derivable, so
#: dropping them could change answers.
PIN_LIMIT = 4 * MEMORY_LIMIT


def _locked(method):
    """Run a cache method under the instance's reentrant lock.

    Reentrancy matters: ``requirements`` calls ``module_requirement``,
    ``compiled_workflow`` calls ``relation`` and ``fingerprint``, and all of
    them update shared tables and counters.
    """

    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    wrapper.__name__ = method.__name__
    wrapper.__doc__ = method.__doc__
    wrapper.__wrapped__ = method
    return wrapper


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a :class:`DerivationCache`'s counters."""

    derivation_hits: int = 0
    derivation_misses: int = 0
    relation_hits: int = 0
    relation_misses: int = 0
    out_set_hits: int = 0
    out_set_misses: int = 0
    compile_hits: int = 0
    compile_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    #: Module-granular accounting: per-module requirement lookups served
    #: from the shared module tier (memory or store) vs actually derived.
    reused_modules: int = 0
    rederived_modules: int = 0
    #: Batched-sweep accounting for kernel derivations that ran through this
    #: cache: candidate masks resolved by vectorized multi-mask passes vs by
    #: per-mask scalar passes, and how many vectorized passes over a packed
    #: relation were paid in total (the O(masks) -> O(batches) win).
    batched_masks: int = 0
    batched_passes: int = 0
    scalar_masks: int = 0
    #: Store-format-v2 accounting: packs served from the store whose code
    #: arrays are memory-mapped sidecars (shared, page-cached, zero-copy)
    #: rather than parsed copies, and the bytes mapped in total.
    mmap_packs: int = 0
    mmap_bytes: int = 0

    @property
    def hits(self) -> int:
        return (
            self.derivation_hits
            + self.relation_hits
            + self.out_set_hits
            + self.compile_hits
        )

    @property
    def misses(self) -> int:
        return (
            self.derivation_misses
            + self.relation_misses
            + self.out_set_misses
            + self.compile_misses
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "derivation_hits": self.derivation_hits,
            "derivation_misses": self.derivation_misses,
            "relation_hits": self.relation_hits,
            "relation_misses": self.relation_misses,
            "out_set_hits": self.out_set_hits,
            "out_set_misses": self.out_set_misses,
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "reused_modules": self.reused_modules,
            "rederived_modules": self.rederived_modules,
            "batched_masks": self.batched_masks,
            "batched_passes": self.batched_passes,
            "scalar_masks": self.scalar_masks,
            "mmap_packs": self.mmap_packs,
            "mmap_bytes": self.mmap_bytes,
        }

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counter increments between an earlier snapshot and this one."""
        return CacheStats(
            **{
                name: value - getattr(earlier, name)
                for name, value in self.as_dict().items()
            }
        )


@dataclass
class DerivationCache:
    """Memoizes derivations with a bounded memory front and optional disk back.

    Workflows are identified by object identity (they are mutable graph
    containers); the cache pins every workflow it has seen so an ``id()``
    can never be recycled while its entries are alive.  A cache may be
    shared freely across :class:`~repro.engine.planner.Planner` instances —
    e.g. one cache for a whole parameter sweep.

    Pass a :class:`~repro.engine.store.DerivationStore` as ``store`` to
    make derivations survive the process: memory misses probe the store by
    content fingerprint, true misses write through.
    """

    store: "DerivationStore | None" = None
    max_entries: int = MEMORY_LIMIT
    max_pins: int = PIN_LIMIT
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    _workflows: dict[int, Workflow] = field(default_factory=dict)
    _fingerprints: dict[int, str] = field(default_factory=dict)
    _requirements: dict[tuple, Mapping[str, RequirementList]] = field(
        default_factory=dict
    )
    _seeded_requirements: dict[tuple, Mapping[str, RequirementList]] = field(
        default_factory=dict
    )
    _relations: dict[int, Relation] = field(default_factory=dict)
    _out_sets: dict[tuple, dict] = field(default_factory=dict)
    _compiled: dict[int, CompiledWorkflow] = field(default_factory=dict)
    #: Shared module tier: keyed by module *content* fingerprint, so any two
    #: workflows containing the same module hit the same entries.
    _modules: dict[int, Module] = field(default_factory=dict)
    _module_fingerprints: dict[int, str] = field(default_factory=dict)
    _module_requirements: dict[tuple, RequirementList] = field(default_factory=dict)
    _compiled_modules: dict[str, CompiledModule] = field(default_factory=dict)
    derivation_hits: int = 0
    derivation_misses: int = 0
    relation_hits: int = 0
    relation_misses: int = 0
    out_set_hits: int = 0
    out_set_misses: int = 0
    compile_hits: int = 0
    compile_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    reused_modules: int = 0
    rederived_modules: int = 0
    batched_masks: int = 0
    batched_passes: int = 0
    scalar_masks: int = 0
    mmap_packs: int = 0
    mmap_bytes: int = 0

    def _evict_pin(self, key: int) -> None:
        """Drop one pinned workflow and every id-keyed entry it anchors."""
        self._workflows.pop(key, None)
        self._fingerprints.pop(key, None)
        self._relations.pop(key, None)
        self._compiled.pop(key, None)
        for table in (self._requirements, self._out_sets):
            for entry_key in [k for k in table if k[0] == key]:
                del table[entry_key]

    def _pin(self, workflow: Workflow) -> int:
        key = id(workflow)
        if key in self._workflows:
            return key
        self._workflows[key] = workflow
        if self.max_pins and len(self._workflows) > self.max_pins:
            # Evict the oldest pin without seeded requirement lists (those
            # are not re-derivable; everything id-keyed is).  Entries go
            # with the pin so a recycled id can never alias stale state.
            seeded = {entry_key[0] for entry_key in self._seeded_requirements}
            for old in list(self._workflows):
                if old != key and old not in seeded:
                    self._evict_pin(old)
                    break
        return key

    def _pin_module(self, module: Module) -> int:
        key = id(module)
        if key in self._modules:
            return key
        self._modules[key] = module
        if self.max_pins and len(self._modules) > self.max_pins:
            # Module-level artifacts are content-keyed (fingerprint
            # strings), so only the pin and its id -> fingerprint memo go.
            for old in list(self._modules):
                if old != key:
                    del self._modules[old]
                    self._module_fingerprints.pop(old, None)
                    break
        return key

    def _remember(self, table: dict, key, value) -> None:
        """Insert into a front-tier table, evicting FIFO past the bound."""
        if self.max_entries and self.max_entries > 0:
            while table and len(table) >= self.max_entries:
                table.pop(next(iter(table)))
        table[key] = value

    # -- content fingerprints -----------------------------------------------------
    @_locked
    def fingerprint(self, workflow: Workflow) -> str:
        """The workflow's content hash (store key), computed at most once."""
        key = self._pin(workflow)
        cached = self._fingerprints.get(key)
        if cached is None:
            from ..workloads.fingerprint import workflow_fingerprint

            cached = workflow_fingerprint(workflow)
            self._fingerprints[key] = cached
        return cached

    @_locked
    def module_fingerprint(self, module: Module) -> str:
        """The module's content hash (shared-tier key), computed at most once.

        Costs and privacy flags are excluded (see
        :func:`repro.workloads.module_fingerprint`), so a what-if cost
        override or a privatization maps to the same entry.
        """
        key = self._pin_module(module)
        cached = self._module_fingerprints.get(key)
        if cached is None:
            from ..workloads.fingerprint import module_fingerprint

            cached = module_fingerprint(module)
            self._module_fingerprints[key] = cached
        return cached

    @_locked
    def attach_store(self, store: "DerivationStore | None") -> None:
        """Attach (or detach, with ``None``) the persistent back tier."""
        self.store = store

    def _count_mapped(self, loaded) -> None:
        """Account a store-served pack whose codes came back memory-mapped."""
        mapped = getattr(loaded.packed, "mapped_bytes", 0)
        if mapped:
            self.mmap_packs += 1
            self.mmap_bytes += mapped

    # -- kernel compilation -------------------------------------------------------
    @_locked
    def compiled_workflow(self, workflow: Workflow) -> CompiledWorkflow:
        """The bit-compiled form of the workflow, packed at most once.

        The packed tables (relation codes, per-module bitmasks, public
        functionality tables) are shared by every kernel-backed derivation
        and verification pass that goes through this cache, and round-trip
        through the persistent store when one is attached.
        """
        key = self._pin(workflow)
        cached = self._compiled.get(key)
        if cached is not None:
            self.compile_hits += 1
            return cached
        if self.store is not None:
            loaded = self.store.load_pack(
                self.fingerprint(workflow), workflow, self.relation(workflow)
            )
            if loaded is not None:
                self.store_hits += 1
                self.compile_hits += 1
                self._count_mapped(loaded)
                self._remember(self._compiled, key, loaded)
                return loaded
            self.store_misses += 1
        self.compile_misses += 1
        compiled = compile_workflow(workflow, self.relation(workflow))
        self._remember(self._compiled, key, compiled)
        if self.store is not None:
            self.store.save_pack(self.fingerprint(workflow), compiled)
        return compiled

    @_locked
    def compiled_module(self, module: Module) -> CompiledModule:
        """The bit-compiled form of one module, packed at most once per content.

        Keyed by module fingerprint, so every workflow containing the module
        (and every Γ/kind sweep over it) shares one pack — in memory and,
        when a store is attached, on disk (privacy-level memos included, so
        a round-tripped pack answers repeat sweeps from the memo).
        """
        fingerprint = self.module_fingerprint(module)
        cached = self._compiled_modules.get(fingerprint)
        if cached is not None:
            return cached
        if self.store is not None:
            loaded = self.store.load_module_pack(fingerprint, module)
            if loaded is not None:
                self.store_hits += 1
                self._count_mapped(loaded)
                self._remember(self._compiled_modules, fingerprint, loaded)
                return loaded
            self.store_misses += 1
        compiled = compile_module(module)
        self._remember(self._compiled_modules, fingerprint, compiled)
        return compiled

    # -- requirement derivation -------------------------------------------------
    @_locked
    def module_requirement(
        self,
        module: Module,
        gamma: int,
        kind: str,
        backend: str | None = None,
    ) -> RequirementList:
        """One module's requirement list, derived at most once per *content*.

        This is the unit the whole derivation pipeline is keyed on: entries
        are shared across workflows, cost variants and edit-chains through
        the module fingerprint, both in the memory front and in the store's
        ``modules/`` tier.  ``reused_modules`` / ``rederived_modules`` count
        how the lookup was served.
        """
        backend = resolve_backend(backend)
        fingerprint = self.module_fingerprint(module)
        key = (fingerprint, gamma, kind, backend)
        cached = self._module_requirements.get(key)
        if cached is not None:
            self.reused_modules += 1
            return cached
        if self.store is not None:
            loaded = self.store.load_module_requirement(
                fingerprint, gamma, kind, backend
            )
            if loaded is not None:
                self.store_hits += 1
                self.reused_modules += 1
                self._remember(self._module_requirements, key, loaded)
                return loaded
            self.store_misses += 1
        self.rederived_modules += 1
        if backend == KERNEL:
            compiled = self.compiled_module(module)
            sweep_before = dict(compiled.sweep_stats)
            derived = derive_module_requirement(
                module, gamma, kind=kind, compiled=compiled
            )
            for counter, value in compiled.sweep_stats.items():
                delta = value - sweep_before[counter]
                setattr(self, counter, getattr(self, counter) + delta)
            if self.store is not None:
                # Export the pack *after* the sweep so the privacy-level
                # memos it populated ride along for future Γ/kind sweeps.
                self.store.save_module_pack(fingerprint, compiled, module=module)
        else:
            derived = derive_module_requirement(
                module, gamma, kind=kind, backend=backend
            )
        self._remember(self._module_requirements, key, derived)
        if self.store is not None:
            self.store.save_module_requirement(
                fingerprint, gamma, kind, backend, derived, module=module
            )
        return derived

    @_locked
    def requirements(
        self,
        workflow: Workflow,
        gamma: int,
        kind: str,
        backend: str | None = None,
    ) -> Mapping[str, RequirementList]:
        """Requirement lists for every private module, derived at most once.

        The workflow-level entry (memory, then store) is the fast path; on a
        true workflow-level miss the mapping is *assembled* from per-module
        lookups in workflow module order, so only modules this cache (or the
        store) has never seen by content are actually derived.
        """
        backend = resolve_backend(backend)
        key = (self._pin(workflow), gamma, kind, backend)
        cached = self._seeded_requirements.get(key)
        if cached is None:
            cached = self._requirements.get(key)
        if cached is not None:
            self.derivation_hits += 1
            return cached
        if self.store is not None:
            loaded = self.store.load_requirements(
                self.fingerprint(workflow), gamma, kind, backend
            )
            if loaded is not None:
                self.store_hits += 1
                self.derivation_hits += 1
                self._remember(self._requirements, key, loaded)
                return loaded
            self.store_misses += 1
        self.derivation_misses += 1
        derived = {
            module.name: self.module_requirement(module, gamma, kind, backend=backend)
            for module in workflow.private_modules
        }
        self._remember(self._requirements, key, derived)
        if self.store is not None:
            self.store.save_requirements(
                self.fingerprint(workflow), gamma, kind, backend, derived,
                workflow=workflow,
            )
        return derived

    @_locked
    def seed_requirements(
        self,
        workflow: Workflow,
        gamma: int,
        kind: str,
        requirements: Mapping[str, RequirementList],
    ) -> None:
        """Pre-populate the cache with already-derived requirement lists.

        Used when a :class:`SecureViewProblem` arrives with its lists already
        attached (loaded from a problem file, built by a generator) so the
        engine never re-derives what the caller paid for.  Caller-provided
        lists are backend-independent, so they satisfy every backend.  They
        are seeded into a *pinned* memory table, exempt from the FIFO bound
        and never persisted: unlike derived lists they may not be
        re-derivable from the workflow (generators attach random lists), so
        silently evicting one would change answers, and the store only
        persists what it can re-key by content.
        """
        pin = self._pin(workflow)
        for backend in VALID_BACKENDS:
            self._seeded_requirements.setdefault(
                (pin, gamma, kind, backend), requirements
            )

    # -- provenance relation ----------------------------------------------------
    @_locked
    def relation(self, workflow: Workflow) -> Relation:
        """The workflow's provenance relation, materialized at most once."""
        key = self._pin(workflow)
        cached = self._relations.get(key)
        if cached is not None:
            self.relation_hits += 1
            return cached
        if self.store is not None:
            loaded = self.store.load_relation(self.fingerprint(workflow), workflow)
            if loaded is not None:
                self.store_hits += 1
                self.relation_hits += 1
                self._remember(self._relations, key, loaded)
                return loaded
            self.store_misses += 1
        self.relation_misses += 1
        relation = workflow.provenance_relation()
        self._remember(self._relations, key, relation)
        if self.store is not None:
            self.store.save_relation(
                self.fingerprint(workflow), relation, workflow=workflow
            )
        return relation

    # -- out-set enumeration (verification) -------------------------------------
    @_locked
    def module_out_sets(
        self,
        workflow: Workflow,
        module_name: str,
        visible: frozenset[str],
        hidden_public_modules: frozenset[str],
        stop_at: int | None,
        backend: str | None = None,
    ) -> dict:
        """``OUT_{x,W}`` for every input of one module, enumerated at most once."""
        backend = resolve_backend(backend)
        key = (
            self._pin(workflow),
            module_name,
            visible,
            hidden_public_modules,
            stop_at,
            backend,
        )
        cached = self._out_sets.get(key)
        if cached is not None:
            self.out_set_hits += 1
            return cached
        store_key = None
        if self.store is not None:
            from .store import OutSetKey

            store_key = OutSetKey(
                module_name, visible, hidden_public_modules, stop_at, backend
            )
            loaded = self.store.load_out_sets(
                self.fingerprint(workflow), workflow, store_key
            )
            if loaded is not None:
                self.store_hits += 1
                self.out_set_hits += 1
                self._remember(self._out_sets, key, loaded)
                return loaded
            self.store_misses += 1
        self.out_set_misses += 1
        if backend == "kernel":
            out_sets = self.compiled_workflow(workflow).module_out_sets(
                module_name,
                visible,
                hidden_public_modules=hidden_public_modules,
                stop_at=stop_at,
            )
        else:
            out_sets = workflow_out_sets(
                workflow,
                module_name,
                visible,
                hidden_public_modules=hidden_public_modules,
                relation=self.relation(workflow),
                stop_at=stop_at,
                backend=backend,
            )
        self._remember(self._out_sets, key, out_sets)
        if self.store is not None and store_key is not None:
            self.store.save_out_sets(
                self.fingerprint(workflow), workflow, store_key, module_name, out_sets
            )
        return out_sets

    # -- bookkeeping ------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss counters (front and store tiers).

        Deliberately *not* under the cache lock: a worker holds that lock
        for the whole of a derivation, and the serving tier's ``/metrics``
        must stay responsive while the server is busiest.  Each counter
        read is atomic (plain ints under the GIL); under concurrency the
        snapshot may mix counters from instants a few operations apart,
        which monitoring tolerates — quiescent readers (tests, benchmarks,
        sweep deltas) see exact values.
        """
        return CacheStats(
            derivation_hits=self.derivation_hits,
            derivation_misses=self.derivation_misses,
            relation_hits=self.relation_hits,
            relation_misses=self.relation_misses,
            out_set_hits=self.out_set_hits,
            out_set_misses=self.out_set_misses,
            compile_hits=self.compile_hits,
            compile_misses=self.compile_misses,
            store_hits=self.store_hits,
            store_misses=self.store_misses,
            reused_modules=self.reused_modules,
            rederived_modules=self.rederived_modules,
            batched_masks=self.batched_masks,
            batched_passes=self.batched_passes,
            scalar_masks=self.scalar_masks,
            mmap_packs=self.mmap_packs,
            mmap_bytes=self.mmap_bytes,
        )

    @_locked
    def clear(self) -> None:
        """Drop every in-memory entry (including pinned workflows, their
        fingerprints and pinned compiled packs) and reset all counters.

        The persistent store, when attached, keeps its on-disk artifacts —
        ``clear`` empties the memory front, never the disk back.
        """
        self._workflows.clear()
        self._fingerprints.clear()
        self._requirements.clear()
        self._seeded_requirements.clear()
        self._relations.clear()
        self._out_sets.clear()
        self._compiled.clear()
        self._modules.clear()
        self._module_fingerprints.clear()
        self._module_requirements.clear()
        self._compiled_modules.clear()
        self.derivation_hits = self.derivation_misses = 0
        self.relation_hits = self.relation_misses = 0
        self.out_set_hits = self.out_set_misses = 0
        self.compile_hits = self.compile_misses = 0
        self.store_hits = self.store_misses = 0
        self.reused_modules = self.rederived_modules = 0
        self.batched_masks = self.batched_passes = self.scalar_masks = 0
        self.mmap_packs = self.mmap_bytes = 0
