"""Registry adapters for every algorithm exported from :mod:`repro.optim`.

Importing this module (which :mod:`repro.engine` does eagerly) populates the
default :class:`~repro.engine.registry.SolverRegistry` with the paper's
algorithms, the exhaustive exact solvers and the benchmark baselines, each
annotated with the constraint kind it handles, its workflow scope, its
randomization status and its approximation guarantee.  The ``cost_rank``
ordering reproduces the historical ``solve_secure_view(method="auto")``
choice: Algorithm-1 LP rounding for cardinality constraints, the general
LP for mixed workflows with set constraints, and the ℓ_max set-LP rounding
otherwise.
"""

from __future__ import annotations

from ..core.secure_view import SecureViewProblem
from ..optim.baselines import hide_all_intermediate, hide_everything, random_feasible
from ..optim.cardinality_rounding import solve_cardinality_rounding
from ..optim.exact import solve_exact_enumeration, solve_exact_ip
from ..optim.general_lp import solve_general_lp
from ..optim.greedy import greedy_guarantee, solve_greedy, union_of_standalone_optima
from ..optim.local_search import solve_with_local_search
from ..optim.set_lp import solve_set_lp
from .registry import register_solver

__all__: list[str] = []


def _lmax_guarantee(problem: SecureViewProblem) -> str:
    return f"l_max = {problem.lmax} (Thm 6)"


def _greedy_guarantee(problem: SecureViewProblem) -> str:
    return f"gamma+1 = {greedy_guarantee(problem)} (Thm 7)"


def _general_guarantee(problem: SecureViewProblem) -> str:
    if problem.constraint_kind == "set":
        return f"l_max = {problem.lmax} (Sec 5.2)"
    return "heuristic (Thm 10 rules out a guarantee)"


register_solver(
    "lp_rounding",
    constraints="cardinality",
    scope="any",
    randomized=True,
    guarantee="O(log n) (Thm 5)",
    cost_rank=10,
    summary="Figure-3 LP relaxation + Algorithm-1 randomized rounding",
)(solve_cardinality_rounding)

register_solver(
    "set_lp",
    constraints="set",
    scope="all-private",
    guarantee=_lmax_guarantee,
    cost_rank=10,
    summary="set-constraint LP + 1/l_max threshold rounding",
)(solve_set_lp)

register_solver(
    "general_lp",
    constraints="any",
    scope="general",
    randomized=True,
    guarantee=_general_guarantee,
    cost_rank=20,
    summary="general-workflow LP (19)-(23) with privatization variables",
)(solve_general_lp)

register_solver(
    "greedy",
    constraints="any",
    scope="any",
    guarantee=_greedy_guarantee,
    cost_rank=30,
    summary="per-module cheapest requirement option",
)(solve_greedy)

register_solver(
    "union_standalone",
    constraints="any",
    scope="any",
    guarantee=_greedy_guarantee,
    cost_rank=35,
    summary="union of standalone optima (Example-5 baseline)",
)(union_of_standalone_optima)

register_solver(
    "local_search",
    constraints="any",
    scope="any",
    guarantee="never worse than its base solver",
    cost_rank=40,
    summary="base solver + pruning / option-swapping post-processing",
)(solve_with_local_search)

register_solver(
    "exact",
    constraints="any",
    scope="any",
    exact=True,
    guarantee="optimal",
    cost_rank=90,
    summary="integral Figure-3 / (15)-(17) / (19)-(23) program (HiGHS)",
    aliases=("exact_ip",),
)(solve_exact_ip)

register_solver(
    "exact_enum",
    constraints="any",
    scope="any",
    exact=True,
    guarantee="optimal",
    cost_rank=95,
    summary="enumeration over requirement-option combinations",
)(solve_exact_enumeration)

register_solver(
    "hide_everything",
    constraints="any",
    scope="any",
    baseline=True,
    cost_rank=100,
    summary="hide every hidable attribute",
)(hide_everything)

register_solver(
    "hide_intermediate",
    constraints="any",
    scope="any",
    baseline=True,
    cost_rank=100,
    summary="hide every intermediate (module-to-module) attribute",
)(hide_all_intermediate)

register_solver(
    "random",
    constraints="any",
    scope="any",
    randomized=True,
    baseline=True,
    cost_rank=100,
    summary="add random attributes until every requirement is met",
)(random_feasible)
