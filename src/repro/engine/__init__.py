"""The unified Secure-View engine: registry, planner, shared derivation cache.

This package is the canonical way to solve Secure-View instances.  Instead
of calling per-algorithm functions in :mod:`repro.optim` (each with its own
signature) and hand-rolling the derive-requirements → build-problem →
solve → assemble pipeline, callers go through one facade::

    from repro.engine import Planner

    planner = Planner(workflow, gamma=2, kind="set")
    result = planner.solve()                          # auto-selected solver
    result = planner.solve(solver="exact", verify=True)
    print(result.cost, result.guarantee, result.certificate.ok)

Components
----------
:class:`Planner`
    Derives requirement lists and materializes relations **once**, memoizes
    them in a :class:`DerivationCache`, auto-selects solvers, and verifies
    Γ-privacy on request.  ``Planner.evolve`` produces a planner for an
    edited workflow that re-derives only the modules whose content changed.
:class:`SolverRegistry` / :func:`register_solver`
    Decorator-based registry of algorithms with metadata (constraint kind,
    scope, randomization, guarantee); pre-populated with every algorithm in
    :mod:`repro.optim` by :mod:`repro.engine.adapters`.
:class:`SolveRequest` / :class:`SolveResult`
    The uniform request/result surface shared by all solvers.
:class:`DerivationCache`
    Two-tier memoization of requirement derivation, provenance relations,
    compiled kernel packs and verification out-sets: a bounded in-memory
    front plus an optional persistent :class:`DerivationStore` back, with
    hit/miss counters for both tiers.  Requirement derivation is
    module-granular: per-module lists and packs are keyed by module content
    fingerprint and shared across workflows, cost variants and edit-chains.
:class:`DerivationStore`
    Content-addressed, disk-backed persistence for derived artifacts keyed
    by workflow fingerprint — plus a shared ``modules/`` tier keyed by
    module fingerprint — so a warm store skips derivation across process
    boundaries.  ``disk_stats``/``gc`` keep long-lived stores bounded.
:func:`run_sweep` / :class:`SweepSpec`
    The parallel sweep executor: fan a (workflow × Γ × kind × solver ×
    seed) grid over worker processes with per-worker store attachment,
    deterministic record ordering and failure isolation.
"""

from .cache import CacheStats, DerivationCache
from .executor import (
    SweepCell,
    SweepInstance,
    SweepReport,
    SweepSpec,
    default_jobs,
    run_sweep,
    scrub_record,
    spec_from_grid,
)
from .planner import Planner
from .registry import (
    SolverRegistry,
    SolverSpec,
    default_registry,
    register_solver,
)
from .result import PrivacyCertificate, SolveRequest, SolveResult
from .store import DerivationStore

from . import adapters as _adapters  # noqa: F401  (populates the registry)

__all__ = [
    "CacheStats",
    "DerivationCache",
    "DerivationStore",
    "Planner",
    "PrivacyCertificate",
    "SolveRequest",
    "SolveResult",
    "SolverRegistry",
    "SolverSpec",
    "SweepCell",
    "SweepInstance",
    "SweepReport",
    "SweepSpec",
    "default_jobs",
    "default_registry",
    "register_solver",
    "run_sweep",
    "scrub_record",
    "spec_from_grid",
]
