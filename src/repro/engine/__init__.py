"""The unified Secure-View engine: registry, planner, shared derivation cache.

This package is the canonical way to solve Secure-View instances.  Instead
of calling per-algorithm functions in :mod:`repro.optim` (each with its own
signature) and hand-rolling the derive-requirements → build-problem →
solve → assemble pipeline, callers go through one facade::

    from repro.engine import Planner

    planner = Planner(workflow, gamma=2, kind="set")
    result = planner.solve()                          # auto-selected solver
    result = planner.solve(solver="exact", verify=True)
    print(result.cost, result.guarantee, result.certificate.ok)

Components
----------
:class:`Planner`
    Derives requirement lists and materializes relations **once**, memoizes
    them in a :class:`DerivationCache`, auto-selects solvers, and verifies
    Γ-privacy on request.
:class:`SolverRegistry` / :func:`register_solver`
    Decorator-based registry of algorithms with metadata (constraint kind,
    scope, randomization, guarantee); pre-populated with every algorithm in
    :mod:`repro.optim` by :mod:`repro.engine.adapters`.
:class:`SolveRequest` / :class:`SolveResult`
    The uniform request/result surface shared by all solvers.
:class:`DerivationCache`
    Shared memoization of requirement derivation, provenance relations and
    verification out-sets, with hit/miss counters.
"""

from .cache import CacheStats, DerivationCache
from .planner import Planner
from .registry import (
    SolverRegistry,
    SolverSpec,
    default_registry,
    register_solver,
)
from .result import PrivacyCertificate, SolveRequest, SolveResult

from . import adapters as _adapters  # noqa: F401  (populates the registry)

__all__ = [
    "CacheStats",
    "DerivationCache",
    "Planner",
    "PrivacyCertificate",
    "SolveRequest",
    "SolveResult",
    "SolverRegistry",
    "SolverSpec",
    "default_registry",
    "register_solver",
]
