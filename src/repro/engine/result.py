"""Uniform request/result types for the Secure-View engine.

Every solver in the registry — exact, LP roundings, greedy, baselines — is
invoked through the same :class:`SolveRequest` and answers with the same
:class:`SolveResult`, so callers (CLI, experiment harness, benchmarks) no
longer depend on per-algorithm signatures.  A result optionally carries a
:class:`PrivacyCertificate`: a brute-force possible-worlds check that the
returned view really is Γ-private, computed through the planner's shared
:class:`~repro.engine.cache.DerivationCache`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.view import SecureViewSolution
from .cache import CacheStats

__all__ = ["PrivacyCertificate", "SolveRequest", "SolveResult"]


@dataclass(frozen=True)
class PrivacyCertificate:
    """Evidence that a solution's view is Γ-private (Definition 6).

    ``module_levels`` maps each private module to the smallest out-set size
    observed over its inputs.  Levels are computed with early termination at
    Γ, so a reported level of Γ means "at least Γ".
    """

    gamma: int
    ok: bool
    module_levels: Mapping[str, int]

    @property
    def weakest_module(self) -> str | None:
        if not self.module_levels:
            return None
        return min(self.module_levels, key=lambda name: self.module_levels[name])

    def as_dict(self) -> dict[str, object]:
        return {
            "gamma": self.gamma,
            "ok": self.ok,
            "module_levels": dict(self.module_levels),
        }


@dataclass
class SolveRequest:
    """One solve invocation, independent of which algorithm runs it.

    Attributes
    ----------
    solver:
        Registry name of the algorithm, or ``"auto"`` to let the planner
        pick the cheapest applicable one from registry metadata.
    seed, rng:
        Randomness for randomized solvers (``rng`` wins when both are set);
        silently ignored by deterministic ones.
    costs:
        Optional per-attribute hiding-cost overrides; attributes not named
        keep their workflow-declared cost.
    local_search:
        ``True`` (default passes) or a sequence of pass names to post-process
        the solution with :mod:`repro.optim.local_search`.
    verify:
        Attach a :class:`PrivacyCertificate` to the result (possible-worlds
        enumeration; small instances only).
    options:
        Extra solver-specific keyword arguments (``scale``, ``strength``,
        ``passes``, ...); rejected with :class:`~repro.exceptions.SolverError`
        if the chosen solver does not accept them.
    """

    solver: str = "auto"
    seed: int | None = None
    rng: random.Random | None = None
    costs: Mapping[str, float] | None = None
    local_search: bool | Sequence[str] = False
    verify: bool = False
    options: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class SolveResult:
    """What every engine solve returns, whichever algorithm ran.

    Attributes
    ----------
    solver:
        Resolved registry name of the algorithm that ran.
    requested:
        The name the caller asked for (``"auto"`` before resolution).
    solution:
        The underlying :class:`SecureViewSolution` (hidden attributes,
        privatized modules, solver ``meta``).
    cost:
        ``c(V̄) + c(P̄)`` under the costs the solve used.
    guarantee:
        Human-readable approximation guarantee for this instance
        (``"optimal"``, ``"O(log n) (Thm 5)"``, ``"l_max = 3 (Thm 6)"``, ...).
    seconds:
        Wall-clock time of the solver call (excluding derivation, which is
        shared and cached).
    certificate:
        Γ-privacy certificate when verification was requested, else ``None``.
    cache_stats:
        Snapshot of the planner's derivation cache after this solve.
    """

    solver: str
    requested: str
    solution: SecureViewSolution
    cost: float
    guarantee: str
    seconds: float
    certificate: PrivacyCertificate | None = None
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def hidden_attributes(self) -> frozenset[str]:
        return self.solution.hidden_attributes

    @property
    def privatized_modules(self) -> frozenset[str]:
        return self.solution.privatized_modules

    @property
    def meta(self) -> dict:
        return self.solution.meta

    def as_record(self) -> dict[str, object]:
        """Flat record for the reporting layer (one row per solve)."""
        record: dict[str, object] = {
            "method": self.solver,
            "cost": self.cost,
            "seconds": self.seconds,
            "hidden": len(self.hidden_attributes),
            "privatized": len(self.privatized_modules),
        }
        if self.guarantee:
            record["guarantee"] = self.guarantee
        if self.certificate is not None:
            record["verified"] = self.certificate.ok
        return record
