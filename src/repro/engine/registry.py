"""Solver registry for the Secure-View engine.

A :class:`SolverSpec` describes one algorithm — its callable, which
constraint kind it handles (set / cardinality / any), which workflow scope
it supports (all-private / general / any), whether it is randomized or
exact, its approximation guarantee, and a ``cost_rank`` the planner uses to
auto-select the cheapest applicable algorithm.  Registration is by
decorator::

    @register_solver("cardinality-lp", constraints="cardinality", scope="all-private")
    def my_solver(problem, seed=None):
        ...

The default registry is populated by :mod:`repro.engine.adapters` with every
algorithm exported from :mod:`repro.optim` plus the exhaustive and baseline
solvers, so ``Planner.solve(solver=<name>)`` reaches each of them through
one uniform entry point.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from ..core.secure_view import SecureViewProblem
from ..exceptions import SolverError

__all__ = [
    "SolverSpec",
    "SolverRegistry",
    "default_registry",
    "register_solver",
]

CONSTRAINT_KINDS = ("set", "cardinality", "any")
SCOPES = ("all-private", "general", "any")


@dataclass(frozen=True)
class SolverSpec:
    """Metadata and callable for one registered Secure-View algorithm."""

    name: str
    fn: Callable[..., object]
    constraints: str = "any"
    scope: str = "any"
    randomized: bool = False
    exact: bool = False
    baseline: bool = False
    guarantee: str | Callable[[SecureViewProblem], str] = ""
    cost_rank: int = 50
    summary: str = ""
    accepts: frozenset[str] = field(default_factory=frozenset)
    accepts_any: bool = False

    def __post_init__(self) -> None:
        if self.constraints not in CONSTRAINT_KINDS:
            raise SolverError(
                f"solver {self.name!r}: constraints must be one of {CONSTRAINT_KINDS}"
            )
        if self.scope not in SCOPES:
            raise SolverError(f"solver {self.name!r}: scope must be one of {SCOPES}")

    def applicable(self, problem: SecureViewProblem) -> bool:
        """Can this algorithm run on the instance (by declared metadata)?"""
        if self.constraints not in ("any", problem.constraint_kind):
            return False
        if not problem.workflow.public_modules:
            return True
        if problem.allow_privatization:
            # Mixed workflow where hiding may force privatization: the solver
            # must know how to price and emit P̄.
            return self.scope in ("general", "any")
        # Public modules whose attributes must stay untouched: general-scope
        # solvers insist on privatization being allowed, the rest may succeed.
        return self.scope in ("all-private", "any")

    def guarantee_for(self, problem: SecureViewProblem) -> str:
        """The (instance-dependent) approximation guarantee as text."""
        if callable(self.guarantee):
            return self.guarantee(problem)
        return self.guarantee

    def accepted_kwargs(
        self, kwargs: dict[str, object], ambient: Sequence[str] = ("seed", "rng")
    ) -> dict[str, object]:
        """Filter keyword arguments down to what the callable accepts.

        Ambient parameters (randomness) are dropped silently when the solver
        does not take them; any other unsupported option is an error so
        typos don't degrade into silently ignored settings.
        """
        if self.accepts_any:
            return dict(kwargs)
        kept: dict[str, object] = {}
        for key, value in kwargs.items():
            if key in self.accepts:
                kept[key] = value
            elif key not in ambient:
                raise SolverError(
                    f"solver {self.name!r} does not accept option {key!r}; "
                    f"accepted: {sorted(self.accepts)}"
                )
        return kept

    def as_record(self) -> dict[str, object]:
        """Flat record for `repro engine list-solvers` and reports."""
        return {
            "name": self.name,
            "constraints": self.constraints,
            "scope": self.scope,
            "randomized": self.randomized,
            "exact": self.exact,
            "baseline": self.baseline,
            "guarantee": (
                "instance-dependent" if callable(self.guarantee) else self.guarantee
            ),
            "summary": self.summary,
        }


def _introspect(fn: Callable[..., object]) -> tuple[frozenset[str], bool]:
    """Keyword parameters a solver callable accepts (beyond the problem)."""
    params = inspect.signature(fn).parameters
    accepts_any = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    names = frozenset(
        name
        for i, (name, p) in enumerate(params.items())
        if i > 0
        and p.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    )
    return names, accepts_any


class SolverRegistry:
    """Name → :class:`SolverSpec` mapping with decorator registration."""

    def __init__(self) -> None:
        self._specs: dict[str, SolverSpec] = {}
        self._aliases: dict[str, str] = {}

    # -- registration -----------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        constraints: str = "any",
        scope: str = "any",
        randomized: bool = False,
        exact: bool = False,
        baseline: bool = False,
        guarantee: str | Callable[[SecureViewProblem], str] = "",
        cost_rank: int = 50,
        summary: str = "",
        aliases: Sequence[str] = (),
    ) -> Callable[[Callable[..., object]], Callable[..., object]]:
        """Decorator registering a solver callable under ``name``."""

        def decorator(fn: Callable[..., object]) -> Callable[..., object]:
            if name in self._specs or name in self._aliases:
                raise SolverError(f"solver {name!r} is already registered")
            accepts, accepts_any = _introspect(fn)
            self._specs[name] = SolverSpec(
                name=name,
                fn=fn,
                constraints=constraints,
                scope=scope,
                randomized=randomized,
                exact=exact,
                baseline=baseline,
                guarantee=guarantee,
                cost_rank=cost_rank,
                summary=summary or ((inspect.getdoc(fn) or "").splitlines() or [""])[0],
                accepts=accepts,
                accepts_any=accepts_any,
            )
            for alias in aliases:
                if alias in self._specs or alias in self._aliases:
                    raise SolverError(f"solver alias {alias!r} is already registered")
                self._aliases[alias] = name
            return fn

        return decorator

    # -- lookup -----------------------------------------------------------------
    def get(self, name: str) -> SolverSpec:
        canonical = self._aliases.get(name, name)
        try:
            return self._specs[canonical]
        except KeyError as exc:
            raise SolverError(
                f"unknown solver {name!r}; available: {self.names()}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._specs or name in self._aliases

    def __iter__(self) -> Iterator[SolverSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self, include_aliases: bool = True) -> list[str]:
        names = set(self._specs)
        if include_aliases:
            names |= set(self._aliases)
        return sorted(names)

    def specs(self) -> list[SolverSpec]:
        """All specs, auto-selection order (cheapest rank first)."""
        return sorted(self._specs.values(), key=lambda s: (s.cost_rank, s.name))

    def applicable(self, problem: SecureViewProblem) -> list[SolverSpec]:
        """Specs whose metadata says they can run on the instance."""
        return [spec for spec in self.specs() if spec.applicable(problem)]

    def select(self, problem: SecureViewProblem) -> SolverSpec:
        """Auto-selection: the cheapest applicable non-baseline algorithm.

        Baselines never win ``auto`` (they carry no guarantee) and the exact
        solvers rank last so approximation algorithms are preferred on
        anything but trivially small instances.
        """
        for spec in self.specs():
            if spec.baseline:
                continue
            if spec.applicable(problem):
                return spec
        raise SolverError(
            f"no registered solver is applicable to this instance "
            f"(kind={problem.constraint_kind!r}, "
            f"public modules={len(problem.workflow.public_modules)}, "
            f"privatization={'allowed' if problem.allow_privatization else 'disallowed'})"
        )


_DEFAULT = SolverRegistry()


def default_registry() -> SolverRegistry:
    """The process-wide registry, populated by :mod:`repro.engine.adapters`."""
    return _DEFAULT


def register_solver(name: str, **metadata):
    """Decorator registering a solver in the default registry."""
    return _DEFAULT.register(name, **metadata)
