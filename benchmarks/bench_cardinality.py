"""E10/E11: cardinality constraints — Algorithm 1 vs exact, set-cover reduction, LP ablation."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.analysis import format_table
from repro.optim import (
    STRENGTH_FULL,
    STRENGTH_NO_CAP,
    STRENGTH_NO_SUM,
    build_cardinality_program,
    solve_cardinality_rounding,
    solve_exact_ip,
    solve_greedy,
)
from repro.reductions import (
    exact_set_cover,
    greedy_set_cover,
    random_set_cover,
    set_cover_to_secure_view,
)
from repro.workloads import random_problem


@pytest.mark.experiment("E10")
@pytest.mark.parametrize("n_modules", [10, 20, 40])
def test_bench_lp_rounding(benchmark, n_modules, report_sink):
    """Algorithm-1 rounding cost stays within O(log n) of the optimum."""
    problem = random_problem(n_modules=n_modules, kind="cardinality", seed=n_modules)
    optimum = solve_exact_ip(problem).cost()

    solution = benchmark(solve_cardinality_rounding, problem, seed=0)
    ratios = [
        solve_cardinality_rounding(problem, seed=seed).cost() / optimum
        for seed in range(5)
    ]
    report_sink.append(
        (
            f"E10 (Theorem 5): LP rounding on n={n_modules} modules",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    [
                        "guarantee",
                        f"O(log n) = {16 * math.log(n_modules):.1f}x",
                        f"{max(ratios):.2f}x worst of 5 seeds",
                    ],
                    [
                        "mean ratio",
                        "close to 1 in practice",
                        f"{statistics.fmean(ratios):.2f}x",
                    ],
                    ["optimum cost", "-", f"{optimum:.2f}"],
                ],
            ),
        )
    )
    assert solution.cost() >= optimum - 1e-6
    assert min(ratios) <= 16 * math.log(n_modules)
    assert statistics.fmean(ratios) <= 4.0


@pytest.mark.experiment("E10")
def test_bench_exact_ip_cardinality(benchmark):
    """The exact Figure-3 IP as a baseline (n = 20 modules)."""
    problem = random_problem(n_modules=20, kind="cardinality", seed=20)
    solution = benchmark(solve_exact_ip, problem)
    problem.validate_solution(solution)


@pytest.mark.experiment("E10")
def test_bench_lp_strength_ablation(benchmark, report_sink):
    """Ablation: the weakened LPs of Appendix B.4 leave larger integrality gaps."""
    problem = random_problem(n_modules=15, kind="cardinality", seed=77)
    optimum = solve_exact_ip(problem).cost()

    def solve_all():
        values = {}
        for strength in (STRENGTH_FULL, STRENGTH_NO_CAP, STRENGTH_NO_SUM):
            built = build_cardinality_program(problem, strength=strength)
            values[strength] = built.solve_relaxation().objective
        return values

    values = benchmark(solve_all)
    rows = [
        [strength, f"{value:.2f}", f"{optimum / value if value else float('inf'):.2f}"]
        for strength, value in values.items()
    ]
    report_sink.append(
        (
            "E10 ablation (Appendix B.4): LP strength vs integrality gap (IP optimum "
            f"= {optimum:.2f})",
            format_table(["LP variant", "LP value", "gap (OPT / LP)"], rows),
        )
    )
    assert values[STRENGTH_NO_CAP] <= values[STRENGTH_FULL] + 1e-6
    assert values[STRENGTH_NO_SUM] <= values[STRENGTH_FULL] + 1e-6
    assert values[STRENGTH_FULL] <= optimum + 1e-6


@pytest.mark.experiment("E11")
def test_bench_set_cover_reduction(benchmark, report_sink):
    """The Theorem-5 reduction preserves optima; greedy set cover upper-bounds it."""
    instance = random_set_cover(10, 8, seed=4)
    problem = set_cover_to_secure_view(instance)

    solution = benchmark(solve_exact_ip, problem)
    cover_opt = len(exact_set_cover(instance))
    greedy_cover = len(greedy_set_cover(instance))
    report_sink.append(
        (
            "E11 (Theorem 5 hardness): set-cover reduction (10 elements, 8 subsets)",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    [
                        "secure-view optimum = set-cover optimum",
                        cover_opt,
                        solution.cost(),
                    ],
                    [
                        "greedy set cover (ln n approx)",
                        f"<= {cover_opt} * ln(10)",
                        greedy_cover,
                    ],
                ],
            ),
        )
    )
    assert solution.cost() == pytest.approx(cover_opt)


@pytest.mark.experiment("E10")
def test_bench_greedy_vs_rounding_unbounded_sharing(benchmark, report_sink):
    """With heavy data sharing the LP rounding beats the greedy baseline."""
    problem = random_problem(
        n_modules=30, kind="cardinality", seed=9, topology="layered"
    )
    optimum = solve_exact_ip(problem).cost()

    rounding_cost = benchmark(
        lambda: min(
            solve_cardinality_rounding(problem, seed=seed).cost() for seed in range(3)
        )
    )
    greedy_cost = solve_greedy(problem).cost()
    report_sink.append(
        (
            "E10 (Theorem 5 vs Example 5 baseline): layered workflow, n=30",
            format_table(
                ["method", "cost", "ratio to optimum"],
                [
                    ["exact IP", f"{optimum:.2f}", "1.00"],
                    [
                        "LP rounding (best of 3)",
                        f"{rounding_cost:.2f}",
                        f"{rounding_cost / optimum:.2f}",
                    ],
                    [
                        "greedy / union of standalone optima",
                        f"{greedy_cost:.2f}",
                        f"{greedy_cost / optimum:.2f}",
                    ],
                ],
            ),
        )
    )
    assert rounding_cost <= greedy_cost + 1e-6 or rounding_cost <= 2 * optimum
