"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one experiment id from DESIGN.md (E1–E18).
Benchmarks assert the qualitative *shape* of the paper's claims (who wins,
by roughly what factor, where guarantees hold) and time the core computation
with pytest-benchmark.  The per-experiment tables recorded in EXPERIMENTS.md
are produced by the same code paths via :mod:`repro.analysis`.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): the DESIGN.md experiment an item reproduces"
    )


@pytest.fixture(scope="session")
def report_sink():
    """Collect (caption, text) report sections across benchmarks and print them."""
    sections: list[tuple[str, str]] = []
    yield sections
    if sections:
        print("\n\n==== reproduction tables ====")
        for caption, text in sections:
            print(f"\n{caption}\n{text}")
