"""Incremental re-solve: edit one module, pay for one module.

PR 4 makes derivation module-granular: requirement lists, packed module
relations and privacy-level memos are keyed by *module* content fingerprint
and shared across every workflow containing the module.  This benchmark
measures the headline consequence on an edit-chain (a *workflow family*:
each variant re-rolls one module of the previous one, everything else
shared) and records it in ``BENCH_incremental.json``:

* **cold** — every variant solved with a fresh :class:`DerivationCache`:
  each solve derives *all* its modules from scratch.  This is the pre-PR-4
  execution model, where any edit invalidated the whole workflow entry.
* **incremental** — the same variants solved through ``Planner.evolve``
  over one shared cache: each re-solve derives exactly the one edited
  module and reuses the rest (asserted via
  ``CacheStats.rederived_modules`` / ``reused_modules``).

The acceptance criterion is :data:`SPEEDUP_FLOOR`: the mean edit-one-module
re-solve must beat the mean cold variant solve at least 2x (with one edited
module out of :data:`N_MODULES`, the ideal factor is ~``N_MODULES``x).

A second phase sweeps the whole family through ``run_sweep`` and asserts
the shared-module chunking pays each *distinct* module derivation exactly
once across the entire grid.

Run standalone (used by the CI smoke step) with::

    python benchmarks/bench_incremental.py --tiny
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import Workflow
from repro.engine import DerivationCache, Planner, SweepInstance, SweepSpec, run_sweep
from repro.workloads import random_total_module, workflow_to_dict

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_incremental.json"

#: Acceptance floor: an edit-one-module re-solve must beat a cold solve.
SPEEDUP_FLOOR = 2.0

#: Modules per workflow; an edit touches one, so ~N_MODULES is the ideal win.
N_MODULES = 4



def build_family(tiny: bool, n_edits: int) -> tuple[list[Workflow], list[str]]:
    """``[base, v1, ..., v_n]`` where variant i re-rolls one module of i-1.

    Modules are disjoint high-arity random tables (the derivation-dominated
    regime of bench_kernel/bench_sweep); every edit swaps one module's table
    for a fresh random one, which changes exactly that module's fingerprint.
    Returns the family and the per-edit module names.
    """
    # Tiny still needs derivation to dominate the fixed per-solve work,
    # or the edit-one-module win drowns in overhead (the CI gate measures it).
    shape = (6, 4) if tiny else (6, 5)
    modules = [
        random_total_module(100 + index, *shape, f"m{index}", f"s{index}_")
        for index in range(N_MODULES)
    ]
    family = [Workflow(list(modules), name="family-base")]
    edited: list[str] = []
    for step in range(1, n_edits + 1):
        slot = (step - 1) % N_MODULES
        name = f"m{slot}"
        modules[slot] = random_total_module(
            1000 * step + slot, *shape, name, f"s{slot}_"
        )
        family.append(Workflow(list(modules), name=f"family-edit{step}"))
        edited.append(name)
    return family, edited


def run_benchmark(tiny: bool = False) -> dict:
    n_edits = 2 if tiny else 4
    family, edited = build_family(tiny, n_edits)
    gamma, kind = 2, "cardinality"

    # -- cold: every variant pays full derivation in a fresh cache ----------
    cold_seconds: list[float] = []
    cold_costs: list[float] = []
    for workflow in family:
        cache = DerivationCache()
        start = time.perf_counter()
        result = Planner(workflow, gamma, kind=kind, cache=cache).solve(solver="auto")
        cold_seconds.append(time.perf_counter() - start)
        cold_costs.append(result.cost)
        assert cache.stats().rederived_modules == N_MODULES

    # -- incremental: evolve through the edit-chain over one shared cache ---
    planner = Planner(family[0], gamma, kind=kind)
    base_result = planner.solve(solver="auto")
    assert base_result.cost == cold_costs[0]
    evolve_seconds: list[float] = []
    for step, workflow in enumerate(family[1:], start=1):
        name = edited[step - 1]
        before = planner.cache.stats()
        start = time.perf_counter()
        planner = planner.evolve(replace={name: workflow.module(name)})
        result = planner.solve(solver="auto")
        evolve_seconds.append(time.perf_counter() - start)
        delta = planner.cache.stats().delta(before)
        # The edit re-derives exactly one module and reuses the rest.
        assert delta.rederived_modules == 1, delta
        assert delta.reused_modules == N_MODULES - 1, delta
        # Module-granular assembly must not change a single answer.
        assert result.cost == cold_costs[step], (result.cost, cold_costs[step])

    cold_mean = sum(cold_seconds[1:]) / len(cold_seconds[1:])
    evolve_mean = sum(evolve_seconds) / len(evolve_seconds)
    speedup = cold_mean / evolve_mean if evolve_mean > 0 else float("inf")

    # -- family sweep: each distinct module derived once across the grid ----
    spec = SweepSpec(
        instances=tuple(
            SweepInstance(workflow.name, "workflow", workflow_to_dict(workflow))
            for workflow in family
        ),
        gammas=(gamma,),
        kinds=(kind,),
        solvers=("auto",),
        seeds=(0,),
    )
    report = run_sweep(spec, n_jobs=1)
    distinct_modules = N_MODULES + n_edits
    assert report.errors == 0
    assert report.stats["rederived_modules"] == distinct_modules, report.stats
    assert report.stats["reused_modules"] == len(family) * N_MODULES - distinct_modules

    record = {
        "benchmark": "bench_incremental",
        "tiny": tiny,
        "speedup_floor": SPEEDUP_FLOOR,
        "modules_per_workflow": N_MODULES,
        "edits": n_edits,
        "cold_seconds_per_variant": cold_mean,
        "evolve_seconds_per_edit": evolve_mean,
        "speedup_incremental": speedup,
        "sweep_distinct_module_derivations": report.stats["rederived_modules"],
        "sweep_reused_module_lookups": report.stats["reused_modules"],
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    write_record(record)
    return record


def write_record(record: dict, path: Path = RECORD_PATH) -> None:
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points (the benchmark harness)
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.experiment("incremental")
    def test_bench_incremental_resolve_speedup(report_sink):
        """An edit-one-module re-solve beats a cold variant solve >= 2x."""
        from repro.analysis import format_table

        record = run_benchmark(tiny=False)
        report_sink.append(
            (
                "Incremental re-solve: cold variant solves vs Planner.evolve "
                f"(record: {RECORD_PATH.name})",
                format_table(
                    ["path", "seconds/solve", "speedup"],
                    [
                        ["cold (fresh cache per variant)",
                         f"{record['cold_seconds_per_variant']:.3f}", "1.0x"],
                        ["incremental (evolve, shared cache)",
                         f"{record['evolve_seconds_per_edit']:.3f}",
                         f"{record['speedup_incremental']:.1f}x"],
                    ],
                ),
            )
        )
        assert record["speedup_incremental"] >= SPEEDUP_FLOOR, (
            f"incremental re-solve speedup {record['speedup_incremental']:.2f}x "
            f"is below the {SPEEDUP_FLOOR}x floor"
        )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    record = run_benchmark(tiny=tiny)
    print(
        f"cold: {record['cold_seconds_per_variant']:.3f}s per variant "
        f"({record['modules_per_workflow']} modules each)"
    )
    print(
        f"incremental: {record['evolve_seconds_per_edit']:.3f}s per edit "
        f"({record['speedup_incremental']:.1f}x)"
    )
    print(
        f"family sweep: {record['sweep_distinct_module_derivations']} distinct "
        f"module derivations, {record['sweep_reused_module_lookups']} reused lookups"
    )
    print(f"record written to {RECORD_PATH}")
    if not tiny and record["speedup_incremental"] < SPEEDUP_FLOOR:
        print(f"FAIL: incremental re-solve below {SPEEDUP_FLOOR}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
