"""E6: Algorithm 2 — standalone Secure-View search scales as ~2^k · N² (§3.2)."""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_table
from repro.core import SafeViewOracle, minimum_cost_safe_subset
from repro.workloads import example6_one_one_module
from repro.reductions import make_m1


@pytest.mark.experiment("E6")
@pytest.mark.parametrize("k", [2, 3])
def test_bench_minimum_cost_safe_subset_one_one(benchmark, k):
    """Exhaustive minimum-cost safe subset for a one-one module with 2k attributes."""
    module = example6_one_one_module(k, seed=5)
    gamma = 2**k

    solution = benchmark(minimum_cost_safe_subset, module, gamma)
    # One-one modules need k hidden inputs or k hidden outputs for Γ = 2^k.
    assert solution.cost == pytest.approx(float(k))


@pytest.mark.experiment("E6")
def test_bench_safe_view_oracle_call(benchmark):
    """A single Safe-View oracle call on the Theorem-3 threshold module (ℓ=8)."""
    module = make_m1(8)
    oracle = SafeViewOracle(module, 2)
    visible = set(module.input_names[:1]) | {"y"}

    result = benchmark(
        lambda: SafeViewOracle(module, 2).is_safe(visible)
    )
    assert result is True


@pytest.mark.experiment("E6")
def test_bench_exponential_growth_in_k(benchmark, report_sink):
    """The search cost grows exponentially with the number of attributes k."""

    def measure(k: int) -> float:
        module = example6_one_one_module(k, seed=5)
        start = time.perf_counter()
        minimum_cost_safe_subset(module, 2**k)
        return time.perf_counter() - start

    timings = benchmark(lambda: [measure(k) for k in (2, 3)])
    rows = [
        ["k=2 (4 attributes)", "baseline", f"{timings[0]:.4f}s"],
        ["k=3 (6 attributes)", "grows ~2^k * N^2", f"{timings[1]:.4f}s"],
    ]
    report_sink.append(
        (
            "E6 (Algorithm 2): exhaustive standalone search runtime",
            format_table(["instance", "paper expectation", "measured"], rows),
        )
    )
    # The k=3 search examines 4x as many subsets over a 4x larger relation.
    assert timings[1] > timings[0]
