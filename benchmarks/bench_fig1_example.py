"""E1/E2: Figure 1, Examples 1–4 — relations, the view of Fig. 1d, 64 worlds."""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import (
    count_standalone_worlds,
    standalone_privacy_level,
)
from repro.workloads import figure1_view_attributes, figure1_workflow


@pytest.mark.experiment("E1")
def test_bench_provenance_relation_materialization(benchmark):
    """Materializing the Figure-1 provenance relation (4 executions)."""

    def build():
        workflow = figure1_workflow()
        return workflow.provenance_relation()

    relation = benchmark(build)
    assert len(relation) == 4
    assert set(relation.attribute_names) == {f"a{i}" for i in range(1, 8)}


@pytest.mark.experiment("E2")
def test_bench_standalone_world_counting(benchmark, report_sink):
    """Counting Worlds(R1, V) for V = {a1, a3, a5} (Example 2: 64 worlds)."""
    workflow = figure1_workflow()
    m1 = workflow.module("m1")
    visible = figure1_view_attributes()

    count = benchmark(count_standalone_worlds, m1, visible)
    assert count == 64

    rows = [
        ["|Worlds(R1, V)| for V={a1,a3,a5}", 64, count],
        [
            "privacy level of V={a1,a3,a5}",
            4,
            standalone_privacy_level(m1, visible),
        ],
        [
            "privacy level hiding only inputs",
            3,
            standalone_privacy_level(m1, {"a3", "a4", "a5"}),
        ],
        [
            "privacy level hiding outputs a4,a5",
            4,
            standalone_privacy_level(m1, {"a1", "a2", "a3"}),
        ],
    ]
    report_sink.append(
        (
            "E1/E2 (Figure 1, Examples 2-3): paper vs measured",
            format_table(["quantity", "paper", "measured"], rows),
        )
    )


@pytest.mark.experiment("E2")
def test_bench_privacy_level_check(benchmark):
    """The Γ-privacy counting check itself (Appendix A.4 condition)."""
    workflow = figure1_workflow()
    m1 = workflow.module("m1")
    level = benchmark(standalone_privacy_level, m1, figure1_view_attributes())
    assert level == 4
