"""E3/E4/E5: the Theorem 1–3 lower-bound constructions, measured."""

from __future__ import annotations

import itertools

import pytest

from repro.analysis import format_table
from repro.reductions import (
    AdversarialSafeViewOracle,
    CountingDataSupplier,
    brute_force_satisfiable,
    input_names,
    random_cnf,
    random_disjointness_instance,
    safe_view_decision,
    safe_view_via_supplier,
    unsat_safe_view_decision,
)


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("universe", [16, 64, 256])
def test_bench_disjointness_scan(benchmark, universe, report_sink):
    """Deciding Safe-View on disjoint instances reads the whole relation (Ω(N))."""
    instance = random_disjointness_instance(
        universe, force_disjoint=True, seed=universe
    )

    def scan():
        supplier = CountingDataSupplier(instance)
        answer = safe_view_via_supplier(supplier)
        return answer, supplier.calls

    answer, calls = benchmark(scan)
    report_sink.append(
        (
            f"E3 (Theorem 1): disjoint instance over N={universe}",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    ["view safe", "no (A ∩ B = ∅)", answer],
                    ["data-supplier calls", f"Ω(N) = {universe + 1}", calls],
                ],
            ),
        )
    )
    assert answer is False
    assert calls == universe + 1
    assert safe_view_decision(instance) is False


@pytest.mark.experiment("E3")
def test_bench_disjointness_equivalence(benchmark):
    """Safety of the input-hiding view equals set intersection across instances."""

    def check_all():
        outcomes = []
        for seed in range(8):
            for force in (True, False):
                instance = random_disjointness_instance(
                    32, force_disjoint=force, seed=seed
                )
                outcomes.append(
                    safe_view_decision(instance) == instance.intersects
                )
        return outcomes

    outcomes = benchmark(check_all)
    assert all(outcomes)


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("n_variables", [4, 6, 8])
def test_bench_unsat_equivalence(benchmark, n_variables, report_sink):
    """Safe-View on the Theorem-2 gadget equals UNSAT of the encoded formula."""

    def check():
        from repro.reductions import CNFFormula

        agreements = 0
        total = 0
        unsat_count = 0
        formulas = [
            random_cnf(n_variables, 2 * n_variables, seed=seed) for seed in range(5)
        ]
        # Add one certainly-unsatisfiable formula (both polarities of x1)
        # so the benchmark exercises the "view is safe" branch as well.
        formulas.append(
            CNFFormula(
                n_variables,
                ((1,), (-1,)) + tuple((i,) for i in range(2, n_variables + 1)),
            )
        )
        for formula in formulas:
            safe = unsat_safe_view_decision(formula)
            unsat = not brute_force_satisfiable(formula)
            agreements += int(safe == unsat)
            unsat_count += int(unsat)
            total += 1
        return agreements, total, unsat_count

    agreements, total, unsat_count = benchmark(check)
    report_sink.append(
        (
            f"E4 (Theorem 2): UNSAT gadget over {n_variables} variables "
            f"({total} formulas, {unsat_count} unsatisfiable)",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    [
                        "safe-view answer = UNSAT",
                        f"{total}/{total}",
                        f"{agreements}/{total}",
                    ],
                    ["unsatisfiable formulas in the sample", ">= 1", unsat_count],
                ],
            ),
        )
    )
    assert agreements == total
    assert unsat_count >= 1


@pytest.mark.experiment("E5")
@pytest.mark.parametrize("ell", [8, 12])
def test_bench_oracle_adversary_game(benchmark, ell, report_sink):
    """The adaptive adversary keeps exponentially many candidates alive."""

    def play():
        oracle = AdversarialSafeViewOracle(ell)
        names = input_names(ell)
        queries = 0
        # The algorithm probes every visible subset of size ℓ/4 (a natural
        # greedy strategy); the candidate space barely shrinks.
        for visible in itertools.combinations(names, ell // 4):
            oracle.is_safe(visible)
            queries += 1
            if queries >= 40:
                break
        return oracle

    oracle = benchmark(play)
    surviving = oracle.remaining_candidates
    report_sink.append(
        (
            f"E5 (Theorem 3): adversary game with ℓ={ell} inputs",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    [
                        "total candidate special sets",
                        f"C(ℓ, ℓ/2) = {oracle.total_candidates}",
                        oracle.total_candidates,
                    ],
                    [
                        "candidates killed per query",
                        f"<= C(3ℓ/4, ℓ/4) = {oracle.max_eliminated_per_query()}",
                        "-",
                    ],
                    ["queries issued", "-", oracle.calls],
                    [
                        "candidates still consistent",
                        "positive unless >= (4/3)^(ℓ/2) queries were spent",
                        surviving,
                    ],
                    [
                        "query lower bound (4/3)^(ℓ/2)",
                        f"{oracle.query_lower_bound():.1f}",
                        "-",
                    ],
                    [
                        "m1 optimal hidden cost",
                        f"3ℓ/4 + 1 = {oracle.m1_optimal_cost():.0f}",
                        "-",
                    ],
                    [
                        "m2 optimal hidden cost",
                        f"ℓ/2 = {oracle.m2_optimal_cost():.0f}",
                        "-",
                    ],
                ],
            ),
        )
    )
    # Theorem 3's dichotomy: either some candidate special set is still
    # consistent (so the algorithm cannot answer yet), or the algorithm spent
    # at least the (4/3)^(ℓ/2) queries the counting argument demands.
    assert surviving > 0 or oracle.calls >= oracle.query_lower_bound()
    assert oracle.m1_optimal_cost() > 1.4 * oracle.m2_optimal_cost()
