"""E13: bounded data sharing — the (γ+1) greedy and the Figure-5 reduction."""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.optim import solve_exact_ip, solve_greedy
from repro.reductions import (
    exact_vertex_cover,
    greedy_vertex_cover,
    random_cubic_graph,
    vertex_cover_to_secure_view,
)
from repro.workloads import random_problem


@pytest.mark.experiment("E13")
@pytest.mark.parametrize("max_sharing", [1, 2, 3])
def test_bench_greedy_bounded_sharing(benchmark, max_sharing, report_sink):
    """Greedy cost / OPT stays below γ+1 across data-sharing levels."""
    problem = random_problem(
        n_modules=20, kind="cardinality", seed=50 + max_sharing, max_sharing=max_sharing
    )
    gamma = problem.workflow.data_sharing_degree()
    optimum = solve_exact_ip(problem).cost()

    solution = benchmark(solve_greedy, problem)
    ratio = solution.cost() / optimum
    report_sink.append(
        (
            f"E13 (Theorem 7): greedy with data sharing bound γ={gamma}",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    ["greedy / OPT", f"<= γ+1 = {gamma + 1}", f"{ratio:.2f}"],
                    ["optimum cost", "-", f"{optimum:.2f}"],
                ],
            ),
        )
    )
    assert ratio <= gamma + 1 + 1e-6


@pytest.mark.experiment("E13")
def test_bench_vertex_cover_reduction(benchmark, report_sink):
    """The Figure-5 reduction: optimum = |E| + minimum vertex cover."""
    instance = random_cubic_graph(10, seed=6)
    problem = vertex_cover_to_secure_view(instance)

    solution = benchmark(solve_exact_ip, problem)
    vc_opt = len(exact_vertex_cover(instance))
    expected = instance.n_edges + vc_opt
    greedy_cover = len(greedy_vertex_cover(instance))
    report_sink.append(
        (
            "E13 (Theorem 7 APX-hardness): vertex-cover reduction on a cubic graph "
            f"({instance.n_vertices} vertices, {instance.n_edges} edges)",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    ["secure-view optimum", f"|E| + K = {expected}", solution.cost()],
                    ["minimum vertex cover K", "-", vc_opt],
                    ["2-approx vertex cover", f"<= {2 * vc_opt}", greedy_cover],
                    [
                        "workflow data sharing γ",
                        1,
                        problem.workflow.data_sharing_degree(),
                    ],
                ],
            ),
        )
    )
    assert solution.cost() == pytest.approx(expected)
