"""Kernel: bit-compiled privacy analysis vs the brute-force reference.

The derivation step is the dominant cost of every Secure-View solve (the
paper proves it is inherently exponential in module arity), so PR 2 packs
module relations into integer bitmask tables and runs the subset sweep as
word-parallel bit operations.  This benchmark measures that win on the
requirement-derivation hot path and records it in ``BENCH_kernel.json``:

* **derivation** — ``derive_workflow_requirements`` (set and cardinality
  kinds) with ``backend="kernel"`` vs ``backend="reference"``; the kernel
  must be at least :data:`SPEEDUP_FLOOR` times faster (asserted — this is
  the acceptance criterion of the kernel PR).  Kernel timings include the
  compile step (the memo is cleared per repeat), so the measured ratio is
  the honest end-to-end one.
* **verification** — workflow out-set enumeration on a small chain,
  reported for context (wall-clock only; the packed DFS prunes dead worlds
  early but the instance is tiny, so no floor is asserted).
* **batched** — the PR 8 mask-sweep kernel: the full ``2^k`` visible-mask
  privacy-level sweep (the requirement-derivation primitive) evaluated via
  ``privacy_levels_batch`` vs one scalar relation pass per mask, on a
  relation big enough for the vectorized path (``>= NUMPY_MIN_ROWS`` rows).
  The batched path must be at least :data:`SPEEDUP_FLOOR` times faster and
  must pay O(batches) relation passes instead of O(masks) (both asserted),
  with byte-identical privacy levels.

Run standalone (used by the CI smoke step) with::

    python benchmarks/bench_kernel.py --tiny
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import Workflow, workflow_out_sets
from repro.core.requirements import (
    derive_module_requirement,
    derive_workflow_requirements,
)
from repro.kernel import CompiledModule, clear_compile_cache, sweep_batching
from repro.workloads import figure1_workflow, random_total_module

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"

#: Acceptance floor: kernel derivation must beat the reference by this factor.
SPEEDUP_FLOOR = 2.0

REPEATS = 3



def derivation_workload(tiny: bool = False) -> Workflow:
    """Disjoint high-arity modules: derivation cost, no shared wiring."""
    if tiny:
        shapes = [(3, 2), (2, 2)]
    else:
        shapes = [(4, 4), (4, 3), (3, 4)]
    modules = [
        random_total_module(11 + index, n_in, n_out, f"m{index}", f"b{index}_")
        for index, (n_in, n_out) in enumerate(shapes)
    ]
    return Workflow(modules, name="kernel-derivation-bench")


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _requirement_signature(lists) -> dict:
    """Backend-independent digest of derived requirement lists."""
    digest = {}
    for name, lst in lists.items():
        digest[name] = sorted(repr(option) for option in lst)
    return digest


def measure_derivation(tiny: bool = False, gamma: int = 2) -> dict:
    """Kernel vs reference timings for requirement derivation."""
    workflow = derivation_workload(tiny=tiny)
    results: dict = {"gamma": gamma, "modules": len(workflow)}
    for kind in ("set", "cardinality"):
        reference_lists = {}
        kernel_lists = {}

        def run_reference():
            reference_lists.update(
                derive_workflow_requirements(
                    workflow, gamma, kind=kind, backend="reference"
                )
            )

        def run_kernel():
            clear_compile_cache()  # charge the kernel for compiling, every repeat
            kernel_lists.update(
                derive_workflow_requirements(
                    workflow, gamma, kind=kind, backend="kernel"
                )
            )

        reference_seconds = _best_of(run_reference)
        kernel_seconds = _best_of(run_kernel)
        assert _requirement_signature(kernel_lists) == _requirement_signature(
            reference_lists
        ), f"backends disagree on {kind} requirement lists"
        results[kind] = {
            "reference_seconds": reference_seconds,
            "kernel_seconds": kernel_seconds,
            "speedup": reference_seconds / kernel_seconds,
        }
    return results


def measure_batched_sweep(tiny: bool = False, gamma: int = 2) -> dict:
    """Batched vs scalar mask-sweep on a numpy-eligible relation.

    The measured unit is the full ``2^k`` visible-mask privacy-level sweep —
    exactly the candidate space a requirement derivation probes — plus the
    requirement derivation itself, both on a fresh compile per repeat so the
    shared level memo never hides the relation passes.  Asserts byte-equal
    levels and the O(masks) -> O(batches) relation-pass drop.
    """
    n_inputs, n_outputs = (8, 1) if tiny else (9, 2)
    module = random_total_module(29, n_inputs, n_outputs, "mb", "bb_")
    rows = 2**n_inputs
    n_masks = 2 ** (n_inputs + n_outputs)
    masks = list(range(n_masks))
    levels: dict[str, list[int]] = {}
    stats: dict[str, dict] = {}

    def sweep(batched: bool):
        def go():
            compiled = CompiledModule(module)
            with sweep_batching(batched):
                key = "batched" if batched else "scalar"
                levels[key] = compiled.privacy_levels_batch(masks)
                stats[key] = dict(compiled.sweep_stats)

        return go

    scalar_seconds = _best_of(sweep(False))
    batched_seconds = _best_of(sweep(True))
    assert levels["batched"] == levels["scalar"], (
        "batched and scalar sweeps disagree on privacy levels"
    )
    scalar_passes = stats["scalar"]["scalar_masks"]
    batched_passes = stats["batched"]["batched_passes"]
    assert scalar_passes == n_masks, stats
    assert stats["batched"]["batched_masks"] == n_masks, stats
    assert batched_passes * 8 <= n_masks, (
        f"batched sweep paid {batched_passes} relation passes for "
        f"{n_masks} masks; expected O(batches), not O(masks)"
    )

    def derive(batched: bool):
        def go():
            clear_compile_cache()
            with sweep_batching(batched):
                for kind in ("set", "cardinality"):
                    derive_module_requirement(module, gamma, kind=kind)

        return go

    derivation_scalar = _best_of(derive(False))
    derivation_batched = _best_of(derive(True))
    return {
        "rows": rows,
        "masks": n_masks,
        "gamma": gamma,
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "scalar_passes": scalar_passes,
        "batched_passes": batched_passes,
        "derivation_scalar_seconds": derivation_scalar,
        "derivation_batched_seconds": derivation_batched,
        "derivation_speedup": derivation_scalar / derivation_batched,
    }


def measure_verification() -> dict:
    """Kernel vs reference out-set enumeration on the Figure-1 workflow."""
    workflow = figure1_workflow()
    visible = {"a1", "a3", "a5"}

    def run(backend):
        def go():
            if backend == "kernel":
                clear_compile_cache()
            for module in workflow.module_names:
                workflow_out_sets(workflow, module, visible, backend=backend)

        return go

    reference_seconds = _best_of(run("reference"))
    kernel_seconds = _best_of(run("kernel"))
    kernel_sets = {
        m: workflow_out_sets(workflow, m, visible, backend="kernel")
        for m in workflow.module_names
    }
    reference_sets = {
        m: workflow_out_sets(workflow, m, visible, backend="reference")
        for m in workflow.module_names
    }
    assert kernel_sets == reference_sets, "backends disagree on out-sets"
    return {
        "reference_seconds": reference_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup": reference_seconds / kernel_seconds,
    }


def write_record(record: dict, path: Path = RECORD_PATH) -> None:
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def run_benchmark(tiny: bool = False) -> dict:
    record = {
        "benchmark": "bench_kernel",
        "tiny": tiny,
        "speedup_floor": SPEEDUP_FLOOR,
        "derivation": measure_derivation(tiny=tiny),
        "verification": measure_verification(),
        "batched": measure_batched_sweep(tiny=tiny),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    write_record(record)
    return record


# ---------------------------------------------------------------------------
# pytest entry points (the benchmark harness)
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.experiment("kernel")
    def test_bench_kernel_derivation_speedup(report_sink):
        """The packed kernel derives requirements >= 2x faster than brute force."""
        from repro.analysis import format_table

        record = run_benchmark(tiny=False)
        rows = []
        for kind in ("set", "cardinality"):
            entry = record["derivation"][kind]
            rows.append(
                [
                    kind,
                    f"{entry['reference_seconds'] * 1e3:.1f}",
                    f"{entry['kernel_seconds'] * 1e3:.1f}",
                    f"{entry['speedup']:.1f}x",
                ]
            )
        verification = record["verification"]
        rows.append(
            [
                "out-set verification",
                f"{verification['reference_seconds'] * 1e3:.1f}",
                f"{verification['kernel_seconds'] * 1e3:.1f}",
                f"{verification['speedup']:.1f}x",
            ]
        )
        batched = record["batched"]
        rows.append(
            [
                f"batched sweep ({batched['masks']} masks)",
                f"{batched['scalar_seconds'] * 1e3:.1f}",
                f"{batched['batched_seconds'] * 1e3:.1f}",
                f"{batched['speedup']:.1f}x",
            ]
        )
        report_sink.append(
            (
                "Kernel: bit-compiled backend vs brute-force reference "
                f"(record: {RECORD_PATH.name})",
                format_table(
                    ["path", "reference ms", "kernel ms", "speedup"], rows
                ),
            )
        )
        for kind in ("set", "cardinality"):
            assert record["derivation"][kind]["speedup"] >= SPEEDUP_FLOOR, (
                f"kernel {kind} derivation speedup "
                f"{record['derivation'][kind]['speedup']:.2f}x is below the "
                f"{SPEEDUP_FLOOR}x floor"
            )
        assert batched["speedup"] >= SPEEDUP_FLOOR, (
            f"batched mask-sweep speedup {batched['speedup']:.2f}x is below "
            f"the {SPEEDUP_FLOOR}x floor"
        )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    record = run_benchmark(tiny=tiny)
    for kind in ("set", "cardinality"):
        entry = record["derivation"][kind]
        print(
            f"derivation[{kind}]: reference {entry['reference_seconds']:.4f}s, "
            f"kernel {entry['kernel_seconds']:.4f}s "
            f"({entry['speedup']:.1f}x)"
        )
    verification = record["verification"]
    print(
        f"verification: reference {verification['reference_seconds']:.4f}s, "
        f"kernel {verification['kernel_seconds']:.4f}s "
        f"({verification['speedup']:.1f}x)"
    )
    batched = record["batched"]
    print(
        f"batched sweep: scalar {batched['scalar_seconds']:.4f}s, "
        f"batched {batched['batched_seconds']:.4f}s "
        f"({batched['speedup']:.1f}x; {batched['scalar_passes']} -> "
        f"{batched['batched_passes']} relation passes; "
        f"derivation {batched['derivation_speedup']:.1f}x)"
    )
    print(f"record written to {RECORD_PATH}")
    if not tiny:
        for kind in ("set", "cardinality"):
            if record["derivation"][kind]["speedup"] < SPEEDUP_FLOOR:
                print(f"FAIL: {kind} derivation below {SPEEDUP_FLOOR}x floor")
                return 1
        if batched["speedup"] < SPEEDUP_FLOOR:
            print(f"FAIL: batched mask-sweep below {SPEEDUP_FLOOR}x floor")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
