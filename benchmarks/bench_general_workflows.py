"""E15/E16/E17: public modules — privatization, the general LP, and its reductions."""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import (
    assemble_general_solution,
    is_gamma_private_workflow,
    workflow_privacy_level,
)
from repro.optim import solve_exact_ip, solve_general_lp
from repro.reductions import (
    exact_label_cover,
    exact_set_cover,
    label_cover_to_general_secure_view,
    random_label_cover,
    random_set_cover,
    set_cover_to_general_secure_view,
)
from repro.workloads import example7_chain, random_problem


@pytest.mark.experiment("E15")
def test_bench_example7_privatization(benchmark, report_sink):
    """Standalone-safe hiding fails next to public modules; privatization repairs it."""
    workflow = example7_chain(2)
    middle = workflow.module("m_mid")
    hidden = set(middle.input_names)
    visible = set(workflow.attribute_names) - hidden

    def measure():
        without = workflow_privacy_level(workflow, "m_mid", visible)
        with_privatization = workflow_privacy_level(
            workflow, "m_mid", visible, hidden_public_modules={"m_head"}
        )
        return without, with_privatization

    without, with_privatization = benchmark(measure)
    report_sink.append(
        (
            "E15 (Example 7 / Theorem 8): privacy level of the one-one module "
            "after hiding its inputs",
            format_table(
                ["configuration", "paper", "measured"],
                [
                    ["public neighbours visible", "1 (privacy broken)", without],
                    ["constant head privatized", ">= Γ = 4", with_privatization],
                ],
            ),
        )
    )
    assert without == 1
    assert with_privatization >= 4


@pytest.mark.experiment("E16")
def test_bench_theorem8_assembly(benchmark):
    """Theorem-8 assembly on the public/private chain."""
    workflow = example7_chain(2)
    solution = benchmark(assemble_general_solution, workflow, 2)
    assert is_gamma_private_workflow(
        workflow,
        solution.visible_attributes,
        2,
        hidden_public_modules=solution.privatized_modules,
    )


@pytest.mark.experiment("E16")
@pytest.mark.parametrize("n_modules", [10, 20])
def test_bench_general_lp(benchmark, n_modules, report_sink):
    """The general LP stays within ℓ_max of the optimum on mixed workflows."""
    problem = random_problem(
        n_modules=n_modules, kind="set", seed=n_modules + 3, private_fraction=0.6
    )
    optimum = solve_exact_ip(problem).cost()

    solution = benchmark(solve_general_lp, problem)
    ratio = solution.cost() / optimum
    report_sink.append(
        (
            f"E16 (Section 5.2): general LP on n={n_modules} mixed modules "
            f"(l_max={problem.lmax})",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    ["ratio to optimum", f"<= l_max = {problem.lmax}", f"{ratio:.2f}"],
                    [
                        "privatized public modules",
                        "-",
                        len(solution.privatized_modules),
                    ],
                ],
            ),
        )
    )
    assert ratio <= problem.lmax + 1e-6


@pytest.mark.experiment("E16")
def test_bench_figure6_reduction(benchmark, report_sink):
    """The Figure-6 (Theorem 10) reduction preserves the label-cover optimum."""
    instance = random_label_cover(2, 2, 2, seed=13)
    problem = label_cover_to_general_secure_view(instance)

    solution = benchmark(solve_exact_ip, problem)
    label_opt = instance.cost(exact_label_cover(instance))
    report_sink.append(
        (
            "E16 (Theorem 10): cardinality constraints in general workflows",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    [
                        "secure-view optimum = label-cover optimum",
                        label_opt,
                        solution.cost(),
                    ],
                    [
                        "cost carried by privatization only",
                        True,
                        solution.cost() == len(solution.privatized_modules),
                    ],
                ],
            ),
        )
    )
    assert solution.cost() == pytest.approx(label_opt)


@pytest.mark.experiment("E17")
def test_bench_theorem9_reduction(benchmark, report_sink):
    """Theorem 9: set cover without data sharing via privatization costs."""
    instance = random_set_cover(8, 6, seed=8)
    problem = set_cover_to_general_secure_view(instance)

    solution = benchmark(solve_exact_ip, problem)
    cover_opt = len(exact_set_cover(instance))
    report_sink.append(
        (
            "E17 (Theorem 9): general workflows without data sharing",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    [
                        "secure-view optimum = set-cover optimum",
                        cover_opt,
                        solution.cost(),
                    ],
                    ["data sharing γ", 1, problem.workflow.data_sharing_degree()],
                ],
            ),
        )
    )
    assert solution.cost() == pytest.approx(cover_opt)
