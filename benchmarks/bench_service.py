"""Serving benchmark: a warm long-lived server vs one-shot CLI processes.

Every pre-service surface pays interpreter start-up, imports, store
attachment and derivation per invocation.  The solve service
(:mod:`repro.service`) pays them once per *process* and additionally
coalesces identical concurrent requests into one computation.  This
benchmark records both effects in ``BENCH_service.json``:

* **throughput** — N sequential one-shot CLI solves (cold subprocesses, the
  pre-service execution model) vs N requests against an already-warm
  ``repro serve`` over real HTTP.  The floor (:data:`SPEEDUP_FLOOR`) is 2x;
  in practice the win is dominated by the per-process start-up the server
  amortizes away, plus the cached verification out-sets.
* **coalescing** — K identical concurrent ``/solve`` requests, fired
  through a start barrier while the first computation is still deriving,
  must perform **exactly one** requirement derivation: the ``coalesced``
  counter ends at ``K - 1`` and the cache's ``derivation_misses`` delta at
  1.  Thread scheduling is the only nondeterminism, so the phase sizes the
  instance to keep derivation well above scheduling jitter (and retries a
  fresh service up to 3 times before declaring failure).
* **async jobs** — an N-cell grid posted to ``/jobs/sweep`` must hand back
  its job handle in well under 100 ms (the submit latency is the point of
  the endpoint); the record also captures the background cell throughput.
  ``--jobs-only`` runs just this phase.
* **module reuse** — a distinct-but-overlapping follow-up workflow reuses
  the shared module tier (``reused_modules``), proving that the serving win
  is not limited to byte-identical requests.
* **scaling** — N *distinct* concurrent requests (distinct workflows, so
  nothing coalesces and nothing caches) against the thread tier vs the
  process execution tier at ``--exec-workers`` 1, 2 and 4.  The thread
  tier timeslices one core behind the GIL; the process tier should
  approach linear scaling on real cores.  The recorded floor for the
  4-worker speedup is hardware-conditional (``scaling.floor``): 2x where
  ``os.cpu_count() >= 4``, a sanity floor on smaller boxes where the win
  is physically unmeasurable — the regression gate reads the floor from
  the record.  The phase also re-runs the coalescing check in process
  mode: K identical in-flight requests must still perform exactly one
  derivation, on one worker.
* **replicas** — the same distinct traffic against ``repro fleet`` fronts
  of 1, 2 and 4 single-process replicas: one replica timeslices the GIL,
  N replicas are N interpreters, so on real cores the curve should bend
  like the process tier's (floor recorded as ``replicas.floor``, same
  hardware conditionality as ``scaling.floor``).  The phase also proves
  the *shared-store* reuse invariant: K identical requests through a
  2-replica fleet with ``--result-cache-size 0`` perform exactly one
  derivation fleet-wide — every repeat is a store result-tier hit,
  whichever replica it lands on.

Run standalone (used by the CI regression gate) with::

    python benchmarks/bench_service.py --tiny
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core import Workflow
from repro.service import ServiceClient, ServiceServer, SolveService
from repro.workloads import random_problem, random_total_module, workflow_to_dict
from repro.workloads.serialization import problem_to_dict

REPO_ROOT = Path(__file__).resolve().parents[1]
RECORD_PATH = REPO_ROOT / "BENCH_service.json"

#: Acceptance floor: warm-server throughput over sequential cold CLI solves.
SPEEDUP_FLOOR = 2.0

#: Concurrent identical requests in the coalescing phase.
K_CONCURRENT = 6

#: Execution-tier sizes the scaling phase times distinct traffic against.
SCALING_WORKER_COUNTS = (1, 2, 4)

#: Floor for ``thread_seconds / process_4_workers_seconds``.  On >= 4 cores
#: the 4-worker process tier must at least double the GIL-bound thread
#: tier; on smaller boxes the win is physically unmeasurable, so the floor
#: degrades to a sanity bound ("the tier is not pathologically slower").
#: The regression gate dereferences the floor from the record
#: (``@scaling.floor``) rather than hard-coding either value.
SCALING_FLOOR_MULTICORE = 2.0
SCALING_FLOOR_FALLBACK = 0.2



def _derivation_heavy_workflow(tiny: bool, reroll: int | None = None) -> Workflow:
    """A workflow whose requirement derivation dominates thread jitter.

    ``reroll`` replaces one module's table with a fresh random one, giving a
    distinct-but-overlapping workflow for the module-reuse phase.
    """
    shape = (5, 4) if tiny else (6, 5)
    n_modules = 3 if tiny else 4
    modules = [
        random_total_module(300 + index, *shape, f"m{index}", f"s{index}_")
        for index in range(n_modules)
    ]
    if reroll is not None:
        slot = reroll % n_modules
        modules[slot] = random_total_module(
            9000 + reroll, *shape, f"m{slot}", f"s{slot}_"
        )
    name = "service-bench" if reroll is None else f"service-bench-edit{reroll}"
    return Workflow(modules, name=name)


# ---------------------------------------------------------------------------
# Phase 1: warm server vs sequential cold CLI
# ---------------------------------------------------------------------------

def _cli_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def run_throughput_phase(tiny: bool, workdir: Path) -> dict:
    from repro.workloads.serialization import dump_problem

    n_requests = 3 if tiny else 5
    problem = random_problem(n_modules=4, kind="set", seed=17, gamma=2)
    problem_path = workdir / "bench-service-problem.json"
    dump_problem(problem, str(problem_path))
    payload = problem_to_dict(problem)

    cli_command = [
        sys.executable, "-m", "repro.cli",
        "solve", str(problem_path), "--solver", "auto",
    ]
    env = _cli_env()
    cold_started = time.perf_counter()
    for _ in range(n_requests):
        completed = subprocess.run(
            cli_command, env=env, capture_output=True, text=True
        )
        assert completed.returncode == 0, completed.stderr
    cold_seconds = time.perf_counter() - cold_started

    store_dir = workdir / "bench-service-store"
    service = SolveService(store=str(store_dir), workers=2, default_timeout=120.0)
    server = ServiceServer(service, port=0).start()
    try:
        client = ServiceClient(server.url, timeout=120.0)
        client.solve(problem=payload, solver="auto")  # warm-up
        warm_started = time.perf_counter()
        for _ in range(n_requests):
            record = client.solve(problem=payload, solver="auto")
            assert record["cost"] > 0
        warm_seconds = time.perf_counter() - warm_started
    finally:
        server.stop(drain_timeout=30)

    from repro.engine import DerivationStore

    store_disk_bytes = DerivationStore(store_dir).disk_stats()["bytes"]
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    return {
        "requests": n_requests,
        "cold_cli_seconds_total": cold_seconds,
        "warm_server_seconds_total": warm_seconds,
        "speedup_warm_server": speedup,
        "store_disk_bytes": store_disk_bytes,
    }


# ---------------------------------------------------------------------------
# Phase 2: K identical concurrent requests -> one derivation
# ---------------------------------------------------------------------------

def _coalesce_once(tiny: bool, attempt: int, exec_mode: str = "threads") -> dict:
    workflow = _derivation_heavy_workflow(tiny)
    payload = workflow_to_dict(workflow)
    body = {"workflow": payload, "gamma": 2, "kind": "cardinality", "solver": "auto"}
    exec_workers = 2 if exec_mode == "processes" else None
    service = SolveService(
        workers=2, default_timeout=300.0,
        exec_mode=exec_mode, exec_workers=exec_workers,
        maintenance_interval=None,
    )
    if service.exec_tier is not None:
        assert service.exec_tier.wait_ready(120)
        # Hold dispatch until every request has attached: the process-mode
        # check is deterministic — no barrier racing, no retries.
        service.exec_tier.pause()
    barrier = threading.Barrier(K_CONCURRENT)
    results: list[dict | None] = [None] * K_CONCURRENT
    errors: list[BaseException] = []

    def call(slot: int) -> None:
        try:
            barrier.wait(timeout=60)
            results[slot] = service.solve_payload(dict(body))
        except BaseException as exc:  # noqa: BLE001 - reported via the record
            errors.append(exc)

    threads = [threading.Thread(target=call, args=(i,)) for i in range(K_CONCURRENT)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    if service.exec_tier is not None:
        from repro.service import parse_solve_payload

        key = parse_solve_payload(dict(body), service.instances).key
        assert service.coalescer.await_waiters(key, K_CONCURRENT, timeout=60)
        service.exec_tier.resume()
    for thread in threads:
        thread.join(timeout=300)
    seconds = time.perf_counter() - started
    assert not errors, errors
    metrics = service.metrics()
    service.drain(timeout=30)
    costs = {record["cost"] for record in results}  # type: ignore[index]
    assert len(costs) == 1, costs
    return {
        "attempt": attempt,
        "exec_mode": exec_mode,
        "requests": K_CONCURRENT,
        "coalesced": metrics["coalesced"],
        "derivations": metrics["cache"]["derivation_misses"],
        "dispatched": metrics["exec"]["dispatched"],
        "seconds": seconds,
    }


def run_coalescing_phase(tiny: bool) -> dict:
    # Scheduling is the only nondeterminism: every follower must reach the
    # coalescer while the leader's derivation (tens of ms at these shapes)
    # is still running.  Fine-grained thread switching plus up to three
    # attempts make a miss vanishingly unlikely without hiding a real bug —
    # a correctness regression fails all three identically.
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        for attempt in range(1, 4):
            outcome = _coalesce_once(tiny, attempt)
            if (
                outcome["coalesced"] == K_CONCURRENT - 1
                and outcome["derivations"] == 1
            ):
                return outcome
        return outcome  # the caller asserts and reports the last attempt
    finally:
        sys.setswitchinterval(previous_interval)


def run_process_coalescing_phase(tiny: bool) -> dict:
    """K identical in-flight requests on the *process* tier: the coalescing
    invariant must hold across the process boundary — one leader, one
    dispatch, one derivation (in a worker, its cache delta merged back)."""
    outcome = _coalesce_once(tiny, attempt=1, exec_mode="processes")
    assert outcome["coalesced"] == K_CONCURRENT - 1, outcome
    assert outcome["derivations"] == 1, outcome
    assert outcome["dispatched"] == 1, outcome
    return outcome


# ---------------------------------------------------------------------------
# Phase 3: async job mode — submit latency and background throughput
# ---------------------------------------------------------------------------

def run_jobs_phase(tiny: bool) -> dict:
    """``POST /jobs/sweep`` answers immediately; cells land in background.

    Measures the submit latency (the whole point of the async endpoint:
    the handle must come back in well under 100 ms regardless of grid
    size) and the background throughput of the job over real HTTP.
    """
    n_cells = 20 if tiny else 50
    payload = workflow_to_dict(_derivation_heavy_workflow(tiny))
    grid = {
        "workflows": [payload],
        "gammas": [2],
        "kinds": ["cardinality"],
        "solvers": ["auto"],
        "seeds": list(range(n_cells)),
    }
    service = SolveService(workers=2, default_timeout=300.0)
    server = ServiceServer(service, port=0).start()
    try:
        client = ServiceClient(server.url, timeout=300.0)
        submit_started = time.perf_counter()
        handle = client.submit_sweep_job(grid)
        submit_seconds = time.perf_counter() - submit_started
        final = client.wait_job(handle["job"], timeout=300, poll=0.05)
        wall_seconds = final["seconds"]
        metrics = client.metrics()
    finally:
        server.stop(drain_timeout=30)
    assert final["state"] == "done", final
    assert final["completed"] == n_cells, final
    assert metrics["jobs"]["done"] == 1, metrics["jobs"]
    assert metrics["jobs"]["cells"]["completed"] == n_cells, metrics["jobs"]
    return {
        "cells": n_cells,
        "submit_seconds": submit_seconds,
        "wall_seconds": wall_seconds,
        "cells_per_second": n_cells / wall_seconds if wall_seconds else float("inf"),
    }


# ---------------------------------------------------------------------------
# Phase 4: overlapping (non-identical) requests share the module tier
# ---------------------------------------------------------------------------

def run_module_reuse_phase(tiny: bool) -> dict:
    service = SolveService(workers=2, default_timeout=300.0)
    base = workflow_to_dict(_derivation_heavy_workflow(tiny))
    edited = workflow_to_dict(_derivation_heavy_workflow(tiny, reroll=0))
    service.solve_payload({"workflow": base, "gamma": 2, "kind": "cardinality"})
    service.solve_payload({"workflow": edited, "gamma": 2, "kind": "cardinality"})
    metrics = service.metrics()
    service.drain(timeout=30)
    n_modules = len(base["modules"])
    return {
        "modules_per_workflow": n_modules,
        "rederived_modules": metrics["cache"]["rederived_modules"],
        "reused_modules": metrics["cache"]["reused_modules"],
        "expected_rederived": n_modules + 1,
        "expected_reused": n_modules - 1,
    }


# ---------------------------------------------------------------------------
# Phase 5: execution-tier scaling — distinct traffic vs --exec-workers
# ---------------------------------------------------------------------------

def _scaling_bodies(tiny: bool) -> list[dict]:
    """Distinct derivation-heavy workflows: nothing coalesces, nothing is
    served from a cache — every request is a real, independent computation."""
    n_requests = 4 if tiny else 8
    shape = (5, 4) if tiny else (6, 5)
    n_modules = 3 if tiny else 4
    bodies = []
    for index in range(n_requests):
        modules = [
            random_total_module(
                7000 + index * 31 + slot, *shape, f"m{slot}", f"s{slot}_"
            )
            for slot in range(n_modules)
        ]
        workflow = Workflow(modules, name=f"scaling-{index}")
        bodies.append(
            {
                "workflow": workflow_to_dict(workflow),
                "gamma": 2,
                "kind": "cardinality",
                "solver": "auto",
            }
        )
    return bodies


def _timed_distinct_run(
    bodies: list[dict], exec_mode: str, exec_workers: int | None
) -> float:
    """Fire every body concurrently against a fresh service; wall seconds."""
    service = SolveService(
        workers=len(bodies), default_timeout=600.0,
        exec_mode=exec_mode, exec_workers=exec_workers,
        maintenance_interval=None,
    )
    if service.exec_tier is not None:
        # Time the steady state, not interpreter start-up: workers must
        # have bootstrapped before the clock starts.
        assert service.exec_tier.wait_ready(120)
    barrier = threading.Barrier(len(bodies))
    errors: list[BaseException] = []

    def call(body: dict) -> None:
        try:
            barrier.wait(timeout=60)
            record = service.solve_payload(dict(body))
            assert record["cost"] >= 0
        except BaseException as exc:  # noqa: BLE001 - surfaced via assert
            errors.append(exc)

    threads = [threading.Thread(target=call, args=(body,)) for body in bodies]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    seconds = time.perf_counter() - started
    assert not errors, errors
    metrics = service.metrics()
    service.drain(timeout=30)
    assert metrics["coalesced"] == 0, metrics  # the traffic really is distinct
    if exec_mode == "processes":
        assert metrics["exec"]["dispatched"] == len(bodies), metrics["exec"]
        assert metrics["exec"]["inline_fallbacks"] == 0, metrics["exec"]
    return seconds


def run_scaling_phase(tiny: bool) -> dict:
    bodies = _scaling_bodies(tiny)
    thread_seconds = _timed_distinct_run(bodies, "threads", None)
    process_seconds = {
        workers: _timed_distinct_run(bodies, "processes", workers)
        for workers in SCALING_WORKER_COUNTS
    }
    cpus = os.cpu_count() or 1
    floor = SCALING_FLOOR_MULTICORE if cpus >= 4 else SCALING_FLOOR_FALLBACK
    best = process_seconds[SCALING_WORKER_COUNTS[-1]]
    return {
        "requests": len(bodies),
        "thread_seconds": thread_seconds,
        "process_seconds": {str(w): s for w, s in process_seconds.items()},
        "speedup_4_workers": thread_seconds / best if best > 0 else float("inf"),
        "cpus": cpus,
        "floor": floor,
    }


# ---------------------------------------------------------------------------
# Phase 6: replica fleet — distinct traffic vs fleet size; shared-store reuse
# ---------------------------------------------------------------------------

#: Fleet sizes the replica phase times distinct traffic against.
REPLICA_COUNTS = (1, 2, 4)

#: Floor for ``fleet_1_replica_seconds / fleet_4_replicas_seconds``.  Same
#: hardware conditionality as the exec-tier scaling floor: each replica is
#: one GIL-bound process, so on >= 4 cores four replicas must at least
#: double one; on smaller boxes the floor degrades to a sanity bound.  The
#: regression gate dereferences ``@replicas.floor`` from the record.
REPLICAS_FLOOR_MULTICORE = 2.0
REPLICAS_FLOOR_FALLBACK = 0.2


def _timed_fleet_run(bodies: list[dict], n_replicas: int) -> float:
    """Fire every body concurrently at a fleet front; wall seconds.

    Each replica is a full ``repro serve`` process (thread workers, no
    process exec tier), so the curve isolates what *replication* buys:
    one replica timeslices the GIL, N replicas are N interpreters.
    """
    from repro.service import FleetSupervisor

    supervisor = FleetSupervisor(
        replicas=n_replicas,
        port=0,
        serve_argv=["--workers", str(len(bodies))],
        spawn_timeout=300.0,
    )
    supervisor.start()
    barrier = threading.Barrier(len(bodies))
    errors: list[BaseException] = []

    def call(body: dict) -> None:
        try:
            client = ServiceClient(supervisor.url, timeout=600.0)
            barrier.wait(timeout=60)
            record = client.solve(
                workflow=body["workflow"], gamma=body["gamma"],
                kind=body["kind"], solver=body["solver"],
            )
            assert record["cost"] >= 0
        except BaseException as exc:  # noqa: BLE001 - surfaced via assert
            errors.append(exc)

    try:
        threads = [
            threading.Thread(target=call, args=(body,)) for body in bodies
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        seconds = time.perf_counter() - started
        assert not errors, errors
        metrics = ServiceClient(supervisor.url, timeout=60.0).metrics()
        assert metrics["fleet"]["in_rotation"] == n_replicas, metrics["fleet"]
        assert metrics["totals"]["coalesced"] == 0, metrics  # distinct traffic
    finally:
        supervisor.stop(drain_timeout=60)
    return seconds


def run_replica_reuse_check(tiny: bool) -> dict:
    """K identical requests through a 2-replica fleet on one store must
    derive **once** fleet-wide: the first replica computes and persists,
    every other request — whichever replica round-robin lands it on — is
    answered from the store's result tier (the replicas run with
    ``--result-cache-size 0``, so there is no in-memory cache to hide
    behind)."""
    from repro.service import FleetSupervisor

    payload = workflow_to_dict(_derivation_heavy_workflow(tiny))
    with tempfile.TemporaryDirectory(prefix="bench-fleet-store-") as store:
        supervisor = FleetSupervisor(
            replicas=2,
            store=Path(store),
            port=0,
            serve_argv=["--workers", "2", "--result-cache-size", "0"],
            spawn_timeout=300.0,
        )
        supervisor.start()
        try:
            client = ServiceClient(supervisor.url, timeout=300.0)
            records = [
                client.solve(
                    workflow=payload, gamma=2, kind="cardinality",
                    solver="auto",
                )
                for _ in range(K_CONCURRENT)
            ]
            metrics = client.metrics()
        finally:
            supervisor.stop(drain_timeout=60)
    costs = {record["cost"] for record in records}
    assert len(costs) == 1, costs
    outcome = {
        "requests": K_CONCURRENT,
        "replicas": 2,
        "store_result_hits": metrics["totals"]["result_hits"]["store"],
        "derivations": metrics["totals"]["cache"]["derivation_misses"],
        "served_from_store": sum(
            1 for record in records if record.get("from_store")
        ),
    }
    assert outcome["store_result_hits"] >= K_CONCURRENT - 1, outcome
    assert outcome["derivations"] == 1, outcome
    return outcome


def run_replica_phase(tiny: bool) -> dict:
    bodies = _scaling_bodies(tiny)
    fleet_seconds = {
        n_replicas: _timed_fleet_run(bodies, n_replicas)
        for n_replicas in REPLICA_COUNTS
    }
    cpus = os.cpu_count() or 1
    floor = REPLICAS_FLOOR_MULTICORE if cpus >= 4 else REPLICAS_FLOOR_FALLBACK
    best = fleet_seconds[REPLICA_COUNTS[-1]]
    return {
        "requests": len(bodies),
        "fleet_seconds": {str(n): s for n, s in fleet_seconds.items()},
        "speedup_4_replicas": (
            fleet_seconds[1] / best if best > 0 else float("inf")
        ),
        "cpus": cpus,
        "floor": floor,
        "store_reuse": run_replica_reuse_check(tiny),
    }


def run_benchmark(tiny: bool = False) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-service-") as workdir:
        throughput = run_throughput_phase(tiny, Path(workdir))
    coalescing = run_coalescing_phase(tiny)
    process_coalescing = run_process_coalescing_phase(tiny)
    jobs = run_jobs_phase(tiny)
    module_reuse = run_module_reuse_phase(tiny)
    scaling = run_scaling_phase(tiny)
    replicas = run_replica_phase(tiny)
    record = {
        "benchmark": "bench_service",
        "tiny": tiny,
        "speedup_floor": SPEEDUP_FLOOR,
        **{f"throughput_{key}": value for key, value in throughput.items()},
        "speedup_warm_server": throughput["speedup_warm_server"],
        "coalesce_requests": coalescing["requests"],
        "coalesced": coalescing["coalesced"],
        "coalesce_derivations": coalescing["derivations"],
        "coalesce_attempt": coalescing["attempt"],
        "coalesce_process": process_coalescing,
        **{f"jobs_{key}": value for key, value in jobs.items()},
        "module_reuse": module_reuse,
        "scaling": scaling,
        "replicas": replicas,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    assert record["coalesced"] == K_CONCURRENT - 1, record
    assert record["coalesce_derivations"] == 1, record
    assert record["jobs_submit_seconds"] < 0.1, record
    assert (
        module_reuse["rederived_modules"] == module_reuse["expected_rederived"]
    ), record
    assert module_reuse["reused_modules"] == module_reuse["expected_reused"], record
    write_record(record)
    return record


def _format_replicas(replicas: dict) -> str:
    curve = ", ".join(
        f"{n}r={replicas['fleet_seconds'][str(n)]:.3f}s"
        for n in REPLICA_COUNTS
    )
    reuse = replicas["store_reuse"]
    return (
        f"replicas: {replicas['requests']} distinct requests — {curve} "
        f"({replicas['speedup_4_replicas']:.2f}x at 4 replicas, "
        f"{replicas['cpus']} cpus, floor {replicas['floor']}x); "
        f"{reuse['requests']} identical requests across {reuse['replicas']} "
        f"replicas -> {reuse['derivations']} derivation "
        f"({reuse['store_result_hits']} store result hits)"
    )


def _format_scaling(scaling: dict) -> str:
    curve = ", ".join(
        f"{workers}w={scaling['process_seconds'][str(workers)]:.3f}s"
        for workers in SCALING_WORKER_COUNTS
    )
    return (
        f"scaling: {scaling['requests']} distinct requests — threads "
        f"{scaling['thread_seconds']:.3f}s vs processes {curve} "
        f"({scaling['speedup_4_workers']:.2f}x at 4 workers, "
        f"{scaling['cpus']} cpus, floor {scaling['floor']}x)"
    )


def write_record(record: dict, path: Path = RECORD_PATH) -> None:
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points (the benchmark harness)
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.experiment("service")
    def test_bench_service_warm_server_speedup(report_sink):
        """A warm solve server beats sequential cold CLI invocations >= 2x."""
        from repro.analysis import format_table

        record = run_benchmark(tiny=False)
        report_sink.append(
            (
                "Solve service: sequential cold CLI processes vs one warm "
                f"server (record: {RECORD_PATH.name})",
                format_table(
                    ["path", "seconds total", "speedup"],
                    [
                        ["cold CLI x" + str(record["throughput_requests"]),
                         f"{record['throughput_cold_cli_seconds_total']:.3f}", "1.0x"],
                        ["warm server x" + str(record["throughput_requests"]),
                         f"{record['throughput_warm_server_seconds_total']:.3f}",
                         f"{record['speedup_warm_server']:.1f}x"],
                    ],
                ),
            )
        )
        assert record["speedup_warm_server"] >= SPEEDUP_FLOOR, (
            f"warm-server speedup {record['speedup_warm_server']:.2f}x "
            f"is below the {SPEEDUP_FLOOR}x floor"
        )
        assert record["coalesced"] == K_CONCURRENT - 1


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    if "--jobs-only" in argv:
        # Just the async-job phase (no record written): a fast smoke for
        # CI and local iteration on the job subsystem.
        jobs = run_jobs_phase(tiny)
        print(
            f"async job: handle in {jobs['submit_seconds'] * 1e3:.1f} ms, "
            f"{jobs['cells']} cells in {jobs['wall_seconds']:.3f}s "
            f"({jobs['cells_per_second']:.1f} cells/s)"
        )
        return 0 if jobs["submit_seconds"] < 0.1 else 1
    if "--replicas-only" in argv:
        # Just the fleet phase (no record written): local iteration on the
        # replica front and supervisor.
        replicas = run_replica_phase(tiny)
        print(_format_replicas(replicas))
        return 0 if replicas["speedup_4_replicas"] >= replicas["floor"] else 1
    if "--scaling-only" in argv:
        # Just the execution-tier scaling curve (no record written): local
        # iteration on the process tier.
        scaling = run_scaling_phase(tiny)
        print(_format_scaling(scaling))
        return 0 if scaling["speedup_4_workers"] >= scaling["floor"] else 1
    record = run_benchmark(tiny=tiny)
    print(
        f"cold CLI: {record['throughput_cold_cli_seconds_total']:.3f}s for "
        f"{record['throughput_requests']} sequential one-shot solves"
    )
    print(
        f"warm server: {record['throughput_warm_server_seconds_total']:.3f}s for "
        f"{record['throughput_requests']} requests "
        f"({record['speedup_warm_server']:.1f}x)"
    )
    print(
        f"coalescing: {record['coalesce_requests']} identical concurrent requests "
        f"-> {record['coalesce_derivations']} derivation "
        f"({record['coalesced']} coalesced)"
    )
    print(
        f"async job: handle in {record['jobs_submit_seconds'] * 1e3:.1f} ms, "
        f"{record['jobs_cells']} cells in {record['jobs_wall_seconds']:.3f}s "
        f"({record['jobs_cells_per_second']:.1f} cells/s)"
    )
    print(
        f"module reuse: {record['module_reuse']['reused_modules']} reused / "
        f"{record['module_reuse']['rederived_modules']} rederived across an edit"
    )
    print(_format_scaling(record["scaling"]))
    print(_format_replicas(record["replicas"]))
    print(f"record written to {RECORD_PATH}")
    if not tiny and record["speedup_warm_server"] < SPEEDUP_FLOOR:
        print(f"FAIL: warm-server speedup below {SPEEDUP_FLOOR}x floor")
        return 1
    if record["scaling"]["speedup_4_workers"] < record["scaling"]["floor"]:
        print(
            "FAIL: 4-worker process tier below the "
            f"{record['scaling']['floor']}x scaling floor"
        )
        return 1
    if record["replicas"]["speedup_4_replicas"] < record["replicas"]["floor"]:
        print(
            "FAIL: 4-replica fleet below the "
            f"{record['replicas']['floor']}x replica scaling floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
