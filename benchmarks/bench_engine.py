"""Engine: shared derivation cache across a multi-solver sweep.

Before the engine, every solver invocation in a comparative sweep re-ran
``SecureViewProblem.from_standalone_analysis`` — i.e. the exponential
standalone enumeration of every private module — once per solver.  The
:class:`~repro.engine.Planner` memoizes that derivation in its
:class:`~repro.engine.DerivationCache`, so an N-solver sweep derives once.

Two measurements:

* **sweep sharing** — a two-solver sweep through one planner performs
  exactly one requirement derivation (counted by the cache) and is
  severalfold faster than the same sweep re-deriving per solver;
* **verification sharing** — verifying several solutions with the same
  optimal view enumerates possible worlds once.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_table
from repro.core import SecureViewProblem
from repro.engine import DerivationCache, Planner
from repro.workloads import figure1_workflow, random_workflow

SWEEP_SOLVERS = ("set_lp", "greedy")


def _cold_sweep(workflow, gamma):
    """The pre-engine pattern: each solver call derives requirements itself."""
    costs = []
    for solver in SWEEP_SOLVERS:
        problem = SecureViewProblem.from_standalone_analysis(
            workflow, gamma, kind="set"
        )
        costs.append(problem.solve(method=solver).cost())
    return costs


def _shared_sweep(workflow, gamma):
    """The engine pattern: one planner, one derivation, N solves."""
    planner = Planner(workflow, gamma, kind="set")
    costs = [planner.solve(solver=solver).cost for solver in SWEEP_SOLVERS]
    return costs, planner.cache.stats()


@pytest.mark.experiment("engine")
def test_bench_shared_derivation_sweep(benchmark, report_sink):
    """A two-solver sweep derives requirements once through a shared Planner."""
    workflow = random_workflow(8, seed=11)
    gamma = 2

    start = time.perf_counter()
    cold_costs = _cold_sweep(workflow, gamma)
    cold_seconds = time.perf_counter() - start

    (shared_costs, stats) = benchmark.pedantic(
        _shared_sweep, args=(workflow, gamma), rounds=1, iterations=1
    )
    start = time.perf_counter()
    _shared_sweep(workflow, gamma)
    shared_seconds = time.perf_counter() - start

    # Same instances, same solvers => identical costs either way.
    assert shared_costs == cold_costs
    # The whole sweep performed exactly one requirement derivation.
    assert stats.derivation_misses == 1
    report_sink.append(
        (
            "Engine: two-solver sweep, per-solver derivation vs shared Planner",
            format_table(
                ["pattern", "derivations", "seconds"],
                [
                    [
                        "per-solver (pre-engine)",
                        len(SWEEP_SOLVERS),
                        f"{cold_seconds:.3f}",
                    ],
                    ["shared Planner", 1, f"{shared_seconds:.3f}"],
                ],
            ),
        )
    )
    # The derivation-count assertion above is the deterministic proof of
    # sharing; the timing rows are reported rather than asserted because a
    # single-round wall-clock comparison is scheduler-noise territory.


@pytest.mark.experiment("engine")
def test_bench_shared_verification_out_sets(benchmark, report_sink):
    """Verifying N solutions with one view enumerates worlds once."""
    planner = Planner(figure1_workflow(), 2, kind="set")
    optimal = planner.solve(solver="exact").solution

    def verify_twice():
        cache = DerivationCache()
        fresh = Planner(
            planner.workflow, planner.gamma, kind="set", cache=cache
        )
        first = fresh.verify(optimal)
        second = fresh.verify(optimal)
        return first, second, cache.stats()

    first, second, stats = benchmark.pedantic(verify_twice, rounds=1, iterations=1)
    assert first.ok and second.ok
    assert stats.out_set_misses == len(planner.workflow.private_modules)
    assert stats.out_set_hits == len(planner.workflow.private_modules)
    report_sink.append(
        (
            "Engine: repeated Γ-verification of one view (out-set cache)",
            format_table(
                ["verifications", "out-set enumerations", "cache hits"],
                [[2, stats.out_set_misses, stats.out_set_hits]],
            ),
        )
    )
