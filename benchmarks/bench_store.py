"""Store format v2: binary mmap-backed packs vs the v1 all-JSON layout.

PR 9 moves the code arrays of the pack and relation tiers out of the JSON
documents into little-endian binary sidecar files that readers memory-map
(:mod:`repro.kernel.binpack`).  This benchmark measures the three wins on
a derivation-heavy workflow (thousands of packed rows) and records them in
``BENCH_store.json``:

* **pack-load latency** — repeated ``load_pack`` against a v1 store
  (JSON-parse every code on every load) vs a v2 store (parse a small
  document, map the sidecar, decode nothing).  The v2 path must beat v1
  by at least :data:`SPEEDUP_FLOOR`; this is the gated metric.
* **per-worker resident memory** — 4 forked workers concurrently attach
  the same store and load the same pack; each reports its USS-style
  private-memory delta (``Private_Clean + Private_Dirty`` from
  ``/proc/self/smaps_rollup``).  v1 workers each hold a parsed Python
  int list; v2 workers share one set of page-cached read-only pages.
  Skipped gracefully (recorded as unmeasured) where ``smaps_rollup`` or
  the ``fork`` start method is unavailable.
* **on-disk bytes** — ``disk_stats()['bytes']`` of the two stores: base-10
  JSON digits vs 8-byte binary records.

Run standalone (used by the CI regression gate) with::

    python benchmarks/bench_store.py --tiny
"""

from __future__ import annotations

import json
import multiprocessing
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.core import Workflow
from repro.engine import DerivationCache, DerivationStore
from repro.workloads import (
    random_total_module,
    workflow_fingerprint,
    workflow_from_dict,
    workflow_to_dict,
)

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_store.json"

#: Acceptance floor: v2 mmap pack loads must beat v1 JSON-parse loads.
SPEEDUP_FLOOR = 2.0

WORKERS = 4


def _bench_workflow(tiny: bool) -> Workflow:
    """Disjoint total modules whose provenance relation has many rows."""
    shapes = [(6, 5), (5, 6)] if tiny else [(7, 6), (6, 7)]
    modules = [
        random_total_module(9 * 100 + index, n_in, n_out, f"m{index}", f"s{index}_")
        for index, (n_in, n_out) in enumerate(shapes)
    ]
    return Workflow(modules, name="store-bench")


def _build_store(directory: Path, workflow: Workflow, format_version: int) -> int:
    """Persist the workflow's pack + relation; returns the packed row count."""
    store = DerivationStore(directory, format_version=format_version)
    fingerprint = workflow_fingerprint(workflow)
    compiled = DerivationCache().compiled_workflow(workflow)
    store.save_pack(fingerprint, compiled)
    store.save_relation(fingerprint, compiled.base_relation, workflow=workflow)
    return len(compiled.packed)


def _time_pack_loads(directory: Path, workflow: Workflow, iterations: int) -> float:
    """Mean seconds per ``load_pack`` against a warm OS page cache."""
    store = DerivationStore(directory)
    fingerprint = workflow_fingerprint(workflow)
    relation = workflow.provenance_relation()
    assert store.load_pack(fingerprint, workflow, relation) is not None  # warm-up
    start = time.perf_counter()
    for _ in range(iterations):
        pack = store.load_pack(fingerprint, workflow, relation)
        assert pack is not None
    return (time.perf_counter() - start) / iterations


def _uss_bytes() -> int | None:
    """This process's private memory (USS-style), or ``None`` off Linux.

    ``Private_Clean + Private_Dirty``, not ``VmRSS``: mmap'd file pages
    shared across workers inflate RSS identically for every mapper, which
    is exactly the accounting v2 is supposed to beat.
    """
    try:
        text = Path("/proc/self/smaps_rollup").read_text()
    except OSError:
        return None
    total = 0
    seen = False
    for line in text.splitlines():
        if line.startswith(("Private_Clean:", "Private_Dirty:")):
            total += int(line.split()[1]) * 1024
            seen = True
    return total if seen else None


#: Packs each memory worker holds resident, like a worker serving a sweep
#: over many hot workflows; amplifies the per-pack representation cost
#: over the interpreter's baseline footprint.
HELD_PACKS = 8


def _memory_worker(directory: str, payload: dict, conn) -> None:
    """Hold :data:`HELD_PACKS` loaded packs, report absolute private memory.

    Spawned fresh (no copy-on-write noise) and measured only after *every*
    worker has mapped (parent barrier), so v2's file-backed pages are
    accounted as shared — the state a real 4-worker sweep holds them in.
    Absolute USS, not a before/after delta: allocator page reuse makes
    small deltas meaningless, while identical bootstrap work on both sides
    cancels out of the v1 − v2 comparison.
    """
    import gc

    workflow = workflow_from_dict(payload)
    fingerprint = workflow_fingerprint(workflow)
    relation = workflow.provenance_relation()
    store = DerivationStore(directory)
    held = []
    checksum = 0
    for _ in range(HELD_PACKS):
        pack = store.load_pack(fingerprint, workflow, relation)
        assert pack is not None
        array = pack.packed.array
        if array is not None:
            checksum ^= int(array.sum())  # faults every page, no row objects
        else:
            checksum ^= sum(pack.packed.codes)
        held.append(pack)
    gc.collect()
    conn.send(("mapped", checksum & 0xFFFF))
    conn.recv()  # barrier: all workers hold their mappings now
    conn.send(("uss", _uss_bytes()))
    conn.recv()  # hold the packs until every sibling has measured
    assert len(held) == HELD_PACKS


def _worker_memory_uss(directory: Path, workflow: Workflow) -> list[int] | None:
    """Absolute per-worker private memory at ``WORKERS`` concurrent holders."""
    if _uss_bytes() is None:  # pragma: no cover - no smaps_rollup
        return None
    ctx = multiprocessing.get_context("spawn")
    payload = workflow_to_dict(workflow)
    procs = []
    for _ in range(WORKERS):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_memory_worker, args=(str(directory), payload, child_conn)
        )
        proc.start()
        child_conn.close()
        procs.append((proc, parent_conn))
    values: list[int] = []
    try:
        for _, conn in procs:  # phase 1: everyone holds its packs
            kind, _ = conn.recv()
            assert kind == "mapped"
        for _, conn in procs:
            conn.send("measure")
        for _, conn in procs:  # phase 2: everyone has measured
            kind, uss = conn.recv()
            assert kind == "uss"
            if uss is None:  # pragma: no cover - smaps vanished mid-run
                return None
            values.append(uss)
        for _, conn in procs:
            conn.send("done")
    finally:
        for proc, conn in procs:
            conn.close()
            proc.join(timeout=60)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join()
    return values


def run_benchmark(tiny: bool = False) -> dict:
    workflow = _bench_workflow(tiny)
    iterations = 10 if tiny else 30
    v1_dir = Path(tempfile.mkdtemp(prefix="repro-bench-store-v1-"))
    v2_dir = Path(tempfile.mkdtemp(prefix="repro-bench-store-v2-"))
    try:
        rows = _build_store(v1_dir, workflow, format_version=1)
        _build_store(v2_dir, workflow, format_version=2)
        v1_bytes = DerivationStore(v1_dir, format_version=1).disk_stats()["bytes"]
        v2_bytes = DerivationStore(v2_dir).disk_stats()["bytes"]

        v1_seconds = _time_pack_loads(v1_dir, workflow, iterations)
        v2_seconds = _time_pack_loads(v2_dir, workflow, iterations)

        v1_uss = _worker_memory_uss(v1_dir, workflow)
        v2_uss = _worker_memory_uss(v2_dir, workflow)
    finally:
        shutil.rmtree(v1_dir, ignore_errors=True)
        shutil.rmtree(v2_dir, ignore_errors=True)

    measured = v1_uss is not None and v2_uss is not None
    if measured:
        v1_avg = sum(v1_uss) / len(v1_uss)
        v2_avg = sum(v2_uss) / len(v2_uss)
        memory = {
            "workers": WORKERS,
            "held_packs": HELD_PACKS,
            "measured": True,
            "v1_avg_uss_bytes": round(v1_avg),
            "v2_avg_uss_bytes": round(v2_avg),
            "reduction_bytes": round(v1_avg - v2_avg),
        }
    else:  # pragma: no cover - platform without smaps_rollup
        memory = {"workers": WORKERS, "held_packs": HELD_PACKS, "measured": False}

    record = {
        "benchmark": "bench_store",
        "tiny": tiny,
        "speedup_floor": SPEEDUP_FLOOR,
        "rows": rows,
        "pack_load": {
            "iterations": iterations,
            "v1_json_seconds": v1_seconds,
            "v2_mmap_seconds": v2_seconds,
            "speedup": v1_seconds / v2_seconds,
        },
        "worker_memory": memory,
        "disk": {
            "v1_bytes": v1_bytes,
            "v2_bytes": v2_bytes,
            "ratio": v1_bytes / v2_bytes,
        },
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    write_record(record)
    return record


def write_record(record: dict, path: Path = RECORD_PATH) -> None:
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points (the benchmark harness)
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.experiment("store")
    def test_bench_binary_store_pack_loads(report_sink):
        """v2 mmap pack loads beat v1 JSON-parse loads >= 2x; workers at a
        shared v2 store hold less private memory than at a v1 store."""
        from repro.analysis import format_table

        record = run_benchmark(tiny=False)
        memory = record["worker_memory"]
        mem_row = (
            [
                f"{memory['v1_avg_uss_bytes'] / 1024:.0f} KiB",
                f"{memory['v2_avg_uss_bytes'] / 1024:.0f} KiB",
            ]
            if memory["measured"]
            else ["(unmeasured)", "(unmeasured)"]
        )
        report_sink.append(
            (
                "Store format v2: binary mmap packs vs v1 JSON "
                f"(record: {RECORD_PATH.name})",
                format_table(
                    ["metric", "v1 (JSON)", "v2 (binary mmap)"],
                    [
                        [
                            "pack load",
                            f"{record['pack_load']['v1_json_seconds'] * 1e3:.2f} ms",
                            f"{record['pack_load']['v2_mmap_seconds'] * 1e3:.2f} ms "
                            f"({record['pack_load']['speedup']:.1f}x)",
                        ],
                        [
                            f"per-worker USS ({WORKERS} workers x "
                            f"{HELD_PACKS} packs)",
                            *mem_row,
                        ],
                        [
                            "store bytes",
                            f"{record['disk']['v1_bytes']}",
                            f"{record['disk']['v2_bytes']} "
                            f"({record['disk']['ratio']:.1f}x smaller)",
                        ],
                    ],
                ),
            )
        )
        assert record["pack_load"]["speedup"] >= SPEEDUP_FLOOR, (
            f"v2 pack-load speedup {record['pack_load']['speedup']:.2f}x is "
            f"below the {SPEEDUP_FLOOR}x floor"
        )
        assert record["disk"]["v2_bytes"] < record["disk"]["v1_bytes"]
        if memory["measured"]:
            assert memory["reduction_bytes"] > 0, (
                "v2 workers hold no less private memory than v1 workers"
            )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    record = run_benchmark(tiny=tiny)
    pack = record["pack_load"]
    print(
        f"pack load ({record['rows']} rows): v1 {pack['v1_json_seconds'] * 1e3:.2f} ms"
        f" vs v2 {pack['v2_mmap_seconds'] * 1e3:.2f} ms ({pack['speedup']:.1f}x)"
    )
    memory = record["worker_memory"]
    if memory["measured"]:
        print(
            f"per-worker USS ({WORKERS} workers x {HELD_PACKS} packs): "
            f"v1 {memory['v1_avg_uss_bytes'] / 1024:.0f} KiB vs "
            f"v2 {memory['v2_avg_uss_bytes'] / 1024:.0f} KiB "
            f"(saves {memory['reduction_bytes'] / 1024:.0f} KiB/worker)"
        )
    else:
        print("per-worker memory: unmeasured on this platform")
    print(
        f"disk: v1 {record['disk']['v1_bytes']} B vs v2 "
        f"{record['disk']['v2_bytes']} B ({record['disk']['ratio']:.1f}x smaller)"
    )
    print(f"record written to {RECORD_PATH}")
    if not tiny and pack["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: v2 pack-load speedup below {SPEEDUP_FLOOR}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
