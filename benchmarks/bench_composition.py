"""E8/E9: Theorem-4 assembly and the Example-5 Ω(n) gap."""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import assemble_all_private_solution, is_gamma_private_workflow
from repro.optim import solve_exact_ip, union_of_standalone_optima
from repro.workloads import example5_problem, figure1_workflow


@pytest.mark.experiment("E8")
def test_bench_theorem4_assembly(benchmark):
    """Assembling workflow privacy from standalone guarantees on Figure 1."""
    workflow = figure1_workflow()

    solution = benchmark(assemble_all_private_solution, workflow, 2)
    assert is_gamma_private_workflow(workflow, solution.visible_attributes, 2)


@pytest.mark.experiment("E9")
def test_bench_example5_gap(benchmark, report_sink):
    """Union of standalone optima (n+1) vs workflow optimum (2+ε)."""
    epsilon = 0.1
    sizes = (4, 8, 16, 32)

    def run_sweep():
        rows = []
        for n in sizes:
            problem = example5_problem(n, epsilon=epsilon)
            baseline = union_of_standalone_optima(problem).cost()
            optimum = solve_exact_ip(problem).cost()
            rows.append((n, baseline, optimum, baseline / optimum))
        return rows

    rows = benchmark(run_sweep)
    table_rows = [
        [n, n + 1, baseline, 2 + epsilon, optimum, f"{ratio:.2f}"]
        for (n, baseline, optimum, ratio) in rows
    ]
    report_sink.append(
        (
            "E9 (Example 5): union-of-standalone-optima vs workflow optimum",
            format_table(
                [
                    "n",
                    "paper baseline (n+1)",
                    "measured baseline",
                    "paper optimum (2+eps)",
                    "measured optimum",
                    "gap",
                ],
                table_rows,
            ),
        )
    )
    for n, baseline, optimum, ratio in rows:
        assert baseline == pytest.approx(n + 1)
        assert optimum == pytest.approx(2 + epsilon)
    # The gap grows linearly in n (Ω(n)).
    ratios = [ratio for *_rest, ratio in rows]
    assert ratios[-1] > 2 * ratios[0]


@pytest.mark.experiment("E9")
def test_bench_exact_solver_on_example5(benchmark):
    """Exact IP on the largest Example-5 instance used in the sweep."""
    problem = example5_problem(32)
    solution = benchmark(solve_exact_ip, problem)
    assert solution.cost() == pytest.approx(2.1)
