"""Ablations called out in DESIGN.md: local search, rounding scale, privatization value.

These are not experiments from the paper; they probe the design choices of
this implementation (and one choice the paper leaves implicit):

* **local search** — how much does pruning/option-swapping improve each base
  solver?  (It provably never hurts; Example 5 is the showcase where it
  closes the whole Ω(n) gap left by the greedy.)
* **rounding scale** — Algorithm 1 uses probability ``min(1, 16·x_b·log n)``;
  smaller constants trade repair frequency against rounded cost.
* **privatization value** — in mixed workflows, how much cheaper are
  solutions that may privatize public modules compared to solutions that
  must avoid touching public modules' attributes altogether?
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis import format_table
from repro.core import SecureViewProblem
from repro.engine import Planner
from repro.exceptions import ProvenanceError
from repro.optim import improve_solution
from repro.workloads import example5_problem, random_problem


@pytest.mark.experiment("ablation")
def test_bench_local_search_ablation(benchmark, report_sink):
    """Greedy / LP-rounding with and without local-search post-processing."""
    instances = [
        ("example5 (n=12)", example5_problem(12)),
        ("random set n=12", random_problem(n_modules=12, kind="set", seed=3)),
        ("random card n=12", random_problem(n_modules=12, kind="cardinality", seed=3)),
    ]
    # One planner per instance: exact, base and improved solves all share the
    # same derivation cache instead of re-deriving requirement lists.
    planners = [(label, Planner.from_problem(problem)) for label, problem in instances]

    def run():
        rows = []
        for label, planner in planners:
            optimum = planner.solve(solver="exact").cost
            base_solver = (
                "lp_rounding" if planner.kind == "cardinality" else "greedy"
            )
            base = planner.solve(solver=base_solver, seed=0)
            improved = improve_solution(planner.problem(), base.solution)
            rows.append(
                [
                    label,
                    f"{base.cost / optimum:.2f}",
                    f"{improved.cost() / optimum:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink.append(
        (
            "Ablation: local-search post-processing (ratio to optimum before/after)",
            format_table(["instance", "base ratio", "after local search"], rows),
        )
    )
    for _, base_ratio, improved_ratio in rows:
        assert float(improved_ratio) <= float(base_ratio) + 1e-9


@pytest.mark.experiment("ablation")
def test_bench_rounding_scale_ablation(benchmark, report_sink):
    """Algorithm 1's rounding constant: cost and repair frequency per scale."""
    problem = random_problem(n_modules=20, kind="cardinality", seed=17)
    planner = Planner.from_problem(problem)
    optimum = planner.solve(solver="exact").cost
    scales = (2.0, 8.0, 16.0)

    def run():
        rows = []
        for scale in scales:
            costs, repairs = [], []
            for seed in range(5):
                result = planner.solve(solver="lp_rounding", seed=seed, scale=scale)
                costs.append(result.cost / optimum)
                repairs.append(len(result.meta["repaired_modules"]))
            rows.append(
                [
                    scale,
                    f"{statistics.fmean(costs):.2f}",
                    f"{statistics.fmean(repairs):.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink.append(
        (
            "Ablation: Algorithm-1 rounding constant (mean over 5 seeds, n=20)",
            format_table(
                ["scale", "mean cost ratio", "mean repaired modules"], rows
            ),
        )
    )
    # The paper's constant (16) needs the fewest repairs.
    assert float(rows[-1][2]) <= float(rows[0][2]) + 1e-9


@pytest.mark.experiment("ablation")
def test_bench_privatization_value(benchmark, report_sink):
    """How much does the option to privatize public modules save?"""
    rows = []

    def run():
        rows.clear()
        for seed in (1, 2, 3):
            problem = random_problem(
                n_modules=12, kind="set", seed=seed, private_fraction=0.6
            )
            planner = Planner.from_problem(problem)
            with_privatization = planner.solve(solver="exact").cost
            public_attrs = {
                name
                for module in problem.workflow.public_modules
                for name in module.attribute_names
            }
            restricted_hidable = frozenset(
                set(problem.workflow.attribute_names) - public_attrs
            )
            restricted = SecureViewProblem(
                problem.workflow,
                problem.gamma,
                problem.requirements,
                hidable_attributes=restricted_hidable,
                allow_privatization=False,
            )
            # Same workflow and lists: the restricted planner shares the
            # first planner's cache, so nothing is re-derived.
            restricted_planner = Planner.from_problem(restricted, cache=planner.cache)
            try:
                without_privatization = restricted_planner.solve(solver="exact").cost
                note = f"{without_privatization / with_privatization:.2f}x"
            except ProvenanceError:
                without_privatization = float("inf")
                note = "infeasible without privatization"
            rows.append(
                [
                    f"seed {seed}",
                    f"{with_privatization:.1f}",
                    (
                        "inf"
                        if without_privatization == float("inf")
                        else f"{without_privatization:.1f}"
                    ),
                    note,
                ]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink.append(
        (
            "Ablation: value of privatization in mixed workflows (exact optima)",
            format_table(
                ["instance", "with privatization", "hiding only", "overhead"], rows
            ),
        )
    )
    assert rows
