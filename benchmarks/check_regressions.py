"""CI benchmark-regression gate: fresh ``--tiny`` runs vs committed floors.

The repository commits one JSON record per headline benchmark
(``BENCH_kernel.json``, ``BENCH_sweep.json``, ``BENCH_incremental.json``,
``BENCH_service.json``, ``BENCH_store.json``), each carrying a
``speedup_floor``.  This script
re-runs every benchmark in ``--tiny`` mode (CI-sized instances) and fails
if any gated speedup lands below the floor *committed* in the corresponding
record — i.e. the floor a past run promised, not whatever the fresh run
happens to produce.

Gated metrics per benchmark (dotted paths into the fresh record):

* ``bench_kernel``       — derivation speedup (set and cardinality) and
  out-set verification speedup of the compiled backend over the reference;
* ``bench_sweep``        — warm-store parallel sweep over serial cold;
* ``bench_incremental``  — edit-one-module re-solve over a cold solve;
* ``bench_service``      — warm-server throughput over sequential cold CLI
  solves (the benchmark itself additionally hard-asserts exact coalescing);
* ``bench_store``        — binary mmap pack loads over v1 JSON parsing.

CI-sized instances carry proportionally more fixed overhead than the
committed full-size runs, so each gated metric also declares a **tiny
floor** — the threshold a healthy tiny run clears with margin.  The
effective gate is ``min(committed speedup_floor, tiny floor)``: weakening
never happens silently (a lowered committed floor lowers the gate), but a
tiny run is never held to a full-size promise it structurally cannot meet.

The tiny runs overwrite the committed ``BENCH_*.json`` files in place (the
benchmarks always write their record); the committed bytes are snapshotted
first and restored afterwards unless ``--keep-records`` is passed, so a
local run leaves the working tree clean while CI can upload the fresh
records as artifacts with ``--keep-records``.

Usage::

    python benchmarks/check_regressions.py [--keep-records] [--only NAME ...]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"

#: benchmark name -> (script, committed record, {dotted metric: tiny floor}).
#: Tiny floors are calibrated well below healthy tiny-run measurements
#: (kernel ~5x, incremental ~3x, service ~100x+, sweep ~2x on 1 core) but
#: far above what a genuine regression — a broken cache tier, a lost
#: coalescing path — would produce (~1x).  A floor spec starting with
#: ``"@"`` is a dotted path dereferenced in the *fresh* record: the
#: benchmark computes a hardware-conditional floor at run time (e.g. the
#: execution-tier scaling win, unmeasurable on a 1-core box) and the gate
#: holds the run to the floor that box can actually meet.
GATES: dict[str, tuple[str, str, dict[str, float | str]]] = {
    "kernel": (
        "bench_kernel.py",
        "BENCH_kernel.json",
        {
            "derivation.set.speedup": 2.0,
            "derivation.cardinality.speedup": 2.0,
            "verification.speedup": 2.0,
            # PR 8 batched mask-sweep vs one scalar relation pass per mask;
            # healthy tiny runs measure ~4x, a lost batch path ~1x.
            "batched.speedup": 2.0,
        },
    ),
    "sweep": (
        "bench_sweep.py",
        "BENCH_sweep.json",
        {"speedup_parallel_warm": 1.3},
    ),
    "incremental": (
        "bench_incremental.py",
        "BENCH_incremental.json",
        {"speedup_incremental": 1.5},
    ),
    "service": (
        "bench_service.py",
        "BENCH_service.json",
        {
            "speedup_warm_server": 2.0,
            # 4-worker process tier vs the GIL-bound thread tier; the
            # benchmark records 2.0 on >= 4 cores, a sanity floor below.
            "scaling.speedup_4_workers": "@scaling.floor",
            # PR 10 replica fleet: 4 single-process replicas vs 1, same
            # hardware-conditional floor recorded by the benchmark.
            "replicas.speedup_4_replicas": "@replicas.floor",
        },
    ),
    "store": (
        "bench_store.py",
        "BENCH_store.json",
        # PR 9 binary mmap pack loads vs v1 JSON parsing; tiny instances
        # (~2k rows) measure ~1.8x where the committed full-size run
        # promises >= 2x, and a lost binary path measures ~1.0x.
        {"pack_load.speedup": 1.3},
    ),
}


def _dig(record: dict, path: str) -> float:
    value = record
    for part in path.split("."):
        value = value[part]
    return float(value)


def check_benchmark(
    name: str, keep_records: bool
) -> list[tuple[str, float, float, bool]]:
    """Run one tiny benchmark; ``(metric, floor, fresh, ok)`` per gate."""
    script, record_name, metrics = GATES[name]
    record_path = REPO_ROOT / record_name
    committed_bytes = record_path.read_bytes()
    committed = json.loads(committed_bytes)
    committed_floor = float(committed["speedup_floor"])

    print(
        f"== {name}: running {script} --tiny "
        f"(committed floor {committed_floor:.1f}x) ==",
        flush=True,
    )
    completed = subprocess.run(
        [sys.executable, str(BENCH_DIR / script), "--tiny"], cwd=str(REPO_ROOT)
    )
    try:
        if completed.returncode != 0:
            raise SystemExit(
                f"{script} --tiny exited {completed.returncode}; "
                "the benchmark's own assertions failed before any floor check"
            )
        fresh = json.loads(record_path.read_text())
        results = []
        for metric, spec in metrics.items():
            if isinstance(spec, str) and spec.startswith("@"):
                tiny_floor = _dig(fresh, spec[1:])
            else:
                tiny_floor = float(spec)
            floor = min(committed_floor, tiny_floor)
            value = _dig(fresh, metric)
            ok = value >= floor
            results.append((f"{name}:{metric}", floor, value, ok))
        return results
    finally:
        if not keep_records:
            record_path.write_bytes(committed_bytes)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--keep-records",
        action="store_true",
        help="leave the fresh tiny records in place (CI artifact upload)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        choices=sorted(GATES),
        default=sorted(GATES),
        help="subset of benchmarks to gate",
    )
    args = parser.parse_args(argv)

    results: list[tuple[str, float, float, bool]] = []
    for name in args.only:
        results.extend(check_benchmark(name, keep_records=args.keep_records))

    width = max(len(metric) for metric, *_ in results)
    print()
    for metric, floor, value, ok in results:
        verdict = "ok  " if ok else "FAIL"
        print(f"{verdict} {metric:<{width}}  {value:8.2f}x  (floor {floor:.1f}x)")
    regressions = [metric for metric, _, _, ok in results if not ok]
    if regressions:
        print(
            f"\nREGRESSION: {len(regressions)} gated metric(s) below the "
            f"committed floor: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(results)} gated metrics meet their committed floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
