"""E14: Example 6 — set lists blow up combinatorially, cardinality lists stay tiny."""

from __future__ import annotations

import math

import pytest

from repro.analysis import format_table
from repro.core import derive_cardinality_requirements, derive_set_requirements
from repro.workloads import example6_majority_module, example6_one_one_module


@pytest.mark.experiment("E14")
@pytest.mark.parametrize("k", [2, 3])
def test_bench_one_one_list_sizes(benchmark, k, report_sink):
    """One-one module on k bits: Ω(C(2k,k))-size set list vs 2-entry cardinality list."""
    module = example6_one_one_module(k, seed=2)
    gamma = 2**k

    set_list = benchmark(derive_set_requirements, module, gamma)
    card_list = derive_cardinality_requirements(module, gamma)
    report_sink.append(
        (
            f"E14 (Example 6): requirement list sizes for a one-one module, k={k}",
            format_table(
                ["encoding", "paper expectation", "measured length"],
                [
                    [
                        "set constraints",
                        "enumerates every minimal safe subset (can reach "
                        f"Ω(C(2k,k)) = Ω({math.comb(2 * k, k)}))",
                        len(set_list),
                    ],
                    [
                        "cardinality constraints",
                        "2 (i.e. (k,0) and (0,k))",
                        len(card_list),
                    ],
                ],
            ),
        )
    )
    assert len(card_list) <= 4
    assert len(set_list) >= len(card_list)
    pairs = {(option.alpha, option.beta) for option in card_list}
    assert (k, 0) in pairs and (0, k) in pairs


@pytest.mark.experiment("E14")
def test_bench_majority_list_sizes(benchmark, report_sink):
    """Majority on 2k inputs: cardinality list is exactly {(k+1,0), (0,1)}."""
    k = 2
    module = example6_majority_module(k)

    card_list = benchmark(derive_cardinality_requirements, module, 2)
    set_list = derive_set_requirements(module, 2)
    pairs = {(option.alpha, option.beta) for option in card_list}
    report_sink.append(
        (
            "E14 (Example 6): requirement lists for majority on 2k=4 inputs",
            format_table(
                ["encoding", "paper expectation", "measured"],
                [
                    ["cardinality pairs", "{(k+1,0), (0,1)}", sorted(pairs)],
                    [
                        "set list length",
                        f">= C(2k,k+1) = {math.comb(2 * k, k + 1)}",
                        len(set_list),
                    ],
                ],
            ),
        )
    )
    assert pairs == {(k + 1, 0), (0, 1)}
    assert len(set_list) >= math.comb(2 * k, k + 1)
