"""E7: Proposition 2 — workflow worlds collapse doubly exponentially, privacy survives."""

from __future__ import annotations

import math

import pytest

from repro.analysis import format_table
from repro.core import (
    count_standalone_worlds,
    enumerate_workflow_worlds,
    is_workflow_private,
)
from repro.workloads import proposition2_chain


def paper_world_counts(k: int, gamma: int = 2) -> tuple[int, float]:
    """The counts Proposition 2 derives: Γ^(2^k) standalone vs (Γ!)^(2^k/Γ) workflow."""
    domain = 2**k
    standalone = gamma**domain
    workflow = math.factorial(gamma) ** (domain // gamma)
    return standalone, workflow


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("k", [1, 2, 3])
def test_bench_standalone_world_count(benchmark, k):
    """Standalone worlds of the first one-one module with log Γ outputs hidden."""
    workflow = proposition2_chain(k)
    m1 = workflow.module("m1")
    visible = set(m1.attribute_names) - {"y0"}

    count = benchmark(count_standalone_worlds, m1, visible)
    expected_standalone, _ = paper_world_counts(k)
    assert count == expected_standalone


@pytest.mark.experiment("E7")
def test_bench_workflow_world_enumeration(benchmark, report_sink):
    """Enumerating the (far fewer) workflow worlds for k = 2 and measuring the ratio."""
    k = 2
    workflow = proposition2_chain(k)
    visible = set(workflow.attribute_names) - {"y0"}

    worlds = benchmark(lambda: list(enumerate_workflow_worlds(workflow, visible)))
    standalone_expected, workflow_expected = paper_world_counts(k)
    m1 = workflow.module("m1")
    standalone_measured = count_standalone_worlds(
        m1, set(m1.attribute_names) - {"y0"}
    )

    rows = [
        ["standalone worlds (Γ^(2^k))", standalone_expected, standalone_measured],
        ["workflow worlds ((Γ!)^(2^k/Γ))", workflow_expected, len(worlds)],
        [
            "ratio standalone/workflow",
            standalone_expected / workflow_expected,
            standalone_measured / len(worlds),
        ],
        [
            "m1 still 2-workflow-private",
            True,
            is_workflow_private(workflow, "m1", visible, 2),
        ],
    ]
    report_sink.append(
        (
            "E7 (Proposition 2): world collapse for the one-one chain, k=2",
            format_table(["quantity", "paper", "measured"], rows),
        )
    )
    assert len(worlds) < standalone_measured
    assert len(worlds) == workflow_expected
