"""Sweep executor: parallel warm-store sweeps vs the serial cold path.

PR 3 adds the two pieces that make grid evaluation scale past one process:
a :class:`~repro.engine.store.DerivationStore` (derivations persisted by
workflow content fingerprint) and :func:`~repro.engine.run_sweep` (the
chunked ``ProcessPoolExecutor`` fan-out).  This benchmark measures the
combined win on a derivation-heavy grid and records it in
``BENCH_sweep.json``:

* **serial cold** — ``run_sweep(spec, n_jobs=1)`` with no store: every
  (workflow, Γ, kind) pays its requirement derivation in-process, one cell
  at a time.  This is the pre-PR-3 execution model.
* **parallel cold** — ``n_jobs=4`` against an empty store: the same grid
  fans out over 4 workers (each attaching the store), which both warms the
  store and checks that parallel records are *identical* to serial ones
  (modulo timings).  Its wall-clock win is informational only: it scales
  with the *physical cores available* (the record notes ``cpu_count``; on
  a single-core box the fan-out costs more than it buys).
* **parallel warm** — ``n_jobs=4`` against the store the cold run just
  warmed: every cell is served from persisted results, zero requirement
  derivations happen anywhere (asserted via the report's counters), and
  the wall-clock must beat the serial cold path by at least
  :data:`SPEEDUP_FLOOR` (the acceptance criterion of this PR).

Run standalone (used by the CI smoke step) with::

    python benchmarks/bench_sweep.py --tiny
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.core import Workflow
from repro.engine import SweepInstance, SweepSpec, run_sweep, scrub_record
from repro.workloads import random_total_module, workflow_to_dict

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

#: Acceptance floor: the 4-worker warm-store sweep must beat serial cold.
SPEEDUP_FLOOR = 2.0

WORKERS = 4



def _sweep_workflow(seed: int, tiny: bool) -> Workflow:
    """Disjoint high-arity modules: derivation-dominated, like bench_kernel."""
    shapes = [(3, 2), (2, 2)] if tiny else [(7, 6), (6, 7)]
    modules = [
        random_total_module(seed * 100 + index, n_in, n_out, f"m{index}", f"s{index}_")
        for index, (n_in, n_out) in enumerate(shapes)
    ]
    return Workflow(modules, name=f"sweep-bench-{seed}")


def sweep_spec(tiny: bool = False) -> SweepSpec:
    n_workflows = 2 if tiny else 6
    instances = tuple(
        SweepInstance(
            f"wf{seed}", "workflow", workflow_to_dict(_sweep_workflow(seed, tiny))
        )
        for seed in range(n_workflows)
    )
    return SweepSpec(
        instances=instances,
        gammas=(2,) if tiny else (2, 3),
        kinds=("cardinality",),
        solvers=("auto", "exact"),
        seeds=(0,),
    )


def run_benchmark(tiny: bool = False) -> dict:
    spec = sweep_spec(tiny=tiny)
    store_dir = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        start = time.perf_counter()
        serial = run_sweep(spec, n_jobs=1)
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel_cold = run_sweep(spec, n_jobs=WORKERS, store=store_dir)
        parallel_cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel_warm = run_sweep(spec, n_jobs=WORKERS, store=store_dir)
        parallel_warm_seconds = time.perf_counter() - start

        from repro.engine import DerivationStore

        store_disk_bytes = DerivationStore(store_dir).disk_stats()["bytes"]
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    # Parallel execution must not change a single answer.
    serial_records = [scrub_record(record) for record in serial.records]
    assert serial_records == [
        scrub_record(record) for record in parallel_cold.records
    ], "parallel cold sweep records differ from serial"
    assert serial_records == [
        scrub_record(record) for record in parallel_warm.records
    ], "warm-store sweep records differ from serial"
    # The warm sweep derived nothing, anywhere — the store proved its point.
    assert parallel_warm.stats["derivation_misses"] == 0, (
        "warm-store sweep performed requirement derivations"
    )
    assert parallel_warm.result_store_hits == len(parallel_warm.records), (
        "warm-store sweep re-ran solver cells"
    )

    import os

    record = {
        "benchmark": "bench_sweep",
        "tiny": tiny,
        "speedup_floor": SPEEDUP_FLOOR,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "cells": len(serial.records),
        "errors": serial.errors,
        "serial_derivations": serial.stats["derivation_misses"],
        "serial_cold_seconds": serial_seconds,
        "parallel_cold_seconds": parallel_cold_seconds,
        "parallel_warm_seconds": parallel_warm_seconds,
        "speedup_parallel_cold": serial_seconds / parallel_cold_seconds,
        "speedup_parallel_warm": serial_seconds / parallel_warm_seconds,
        "cold_derivations": parallel_cold.stats["derivation_misses"],
        "warm_derivations": parallel_warm.stats["derivation_misses"],
        "warm_result_store_hits": parallel_warm.result_store_hits,
        "store_disk_bytes": store_disk_bytes,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    write_record(record)
    return record


def write_record(record: dict, path: Path = RECORD_PATH) -> None:
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest entry points (the benchmark harness)
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.experiment("sweep")
    def test_bench_warm_store_parallel_sweep_speedup(report_sink):
        """A 4-worker warm-store sweep beats the serial cold path >= 2x."""
        from repro.analysis import format_table

        record = run_benchmark(tiny=False)
        report_sink.append(
            (
                "Sweep executor: serial cold vs 4-worker store-backed sweeps "
                f"(record: {RECORD_PATH.name})",
                format_table(
                    ["path", "seconds", "speedup", "derivations"],
                    [
                        ["serial cold", f"{record['serial_cold_seconds']:.2f}", "1.0x",
                         record["serial_derivations"]],
                        ["parallel cold (4 workers)",
                         f"{record['parallel_cold_seconds']:.2f}",
                         f"{record['speedup_parallel_cold']:.1f}x",
                         record["cold_derivations"]],
                        ["parallel warm (4 workers)",
                         f"{record['parallel_warm_seconds']:.2f}",
                         f"{record['speedup_parallel_warm']:.1f}x",
                         record["warm_derivations"]],
                    ],
                ),
            )
        )
        assert record["errors"] == 0
        assert record["speedup_parallel_warm"] >= SPEEDUP_FLOOR, (
            f"warm-store parallel sweep speedup "
            f"{record['speedup_parallel_warm']:.2f}x is below the "
            f"{SPEEDUP_FLOOR}x floor"
        )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    record = run_benchmark(tiny=tiny)
    print(
        f"serial cold: {record['serial_cold_seconds']:.2f}s over "
        f"{record['cells']} cells ({record['errors']} errors)"
    )
    print(
        f"parallel cold ({WORKERS} workers): "
        f"{record['parallel_cold_seconds']:.2f}s "
        f"({record['speedup_parallel_cold']:.1f}x)"
    )
    print(
        f"parallel warm ({WORKERS} workers): "
        f"{record['parallel_warm_seconds']:.2f}s "
        f"({record['speedup_parallel_warm']:.1f}x), "
        f"{record['warm_derivations']} derivations, "
        f"{record['warm_result_store_hits']} cells from store"
    )
    print(f"record written to {RECORD_PATH}")
    if not tiny and record["speedup_parallel_warm"] < SPEEDUP_FLOOR:
        print(f"FAIL: warm-store sweep below {SPEEDUP_FLOOR}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
