"""E12: set constraints — ℓ_max LP rounding and the Figure-4 label-cover reduction."""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.optim import solve_exact_ip, solve_greedy, solve_set_lp
from repro.reductions import (
    exact_label_cover,
    greedy_label_cover,
    label_cover_to_set_secure_view,
    random_label_cover,
)
from repro.workloads import random_problem


@pytest.mark.experiment("E12")
@pytest.mark.parametrize("n_modules", [10, 20, 40])
def test_bench_set_lp_rounding(benchmark, n_modules, report_sink):
    """ℓ_max-rounding cost / OPT stays below ℓ_max (Theorem 6 upper bound)."""
    problem = random_problem(n_modules=n_modules, kind="set", seed=n_modules + 1)
    optimum = solve_exact_ip(problem).cost()

    solution = benchmark(solve_set_lp, problem)
    ratio = solution.cost() / optimum
    greedy_ratio = solve_greedy(problem).cost() / optimum
    report_sink.append(
        (
            f"E12 (Theorem 6): set constraints on n={n_modules} modules "
            f"(l_max={problem.lmax})",
            format_table(
                ["method", "ratio to optimum", "paper guarantee"],
                [
                    ["lp rounding", f"{ratio:.2f}", f"<= l_max = {problem.lmax}"],
                    ["greedy", f"{greedy_ratio:.2f}", "gamma+1 with bounded sharing"],
                ],
            ),
        )
    )
    assert ratio <= problem.lmax + 1e-6
    assert solution.cost() >= optimum - 1e-6


@pytest.mark.experiment("E12")
def test_bench_label_cover_reduction(benchmark, report_sink):
    """The Figure-4 reduction preserves the label-cover optimum exactly."""
    instance = random_label_cover(3, 2, 2, seed=11)
    problem = label_cover_to_set_secure_view(instance)

    solution = benchmark(solve_exact_ip, problem)
    label_opt = instance.cost(exact_label_cover(instance))
    heuristic = instance.cost(greedy_label_cover(instance))
    report_sink.append(
        (
            "E12 (Theorem 6 hardness): label-cover reduction (3+2 vertices, 2 labels)",
            format_table(
                ["quantity", "paper", "measured"],
                [
                    [
                        "secure-view optimum = label-cover optimum",
                        label_opt,
                        solution.cost(),
                    ],
                    ["greedy label cover (upper bound)", f">= {label_opt}", heuristic],
                    ["l_max of the instance", "<= |L|^2", problem.lmax],
                ],
            ),
        )
    )
    assert solution.cost() == pytest.approx(label_opt)


@pytest.mark.experiment("E12")
def test_bench_set_ip_exact(benchmark):
    """Exact IP on a mid-sized set-constraint instance (baseline timing)."""
    problem = random_problem(n_modules=30, kind="set", seed=33)
    solution = benchmark(solve_exact_ip, problem)
    problem.validate_solution(solution)
