"""E18: scalability of the LP-based solvers on scientific-workflow-shaped instances."""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_table
from repro.optim import (
    solve_cardinality_rounding,
    solve_exact_ip,
    solve_greedy,
)
from repro.workloads import ScientificWorkflowConfig, scientific_problem


def _problem(n_modules: int, seed: int = 0):
    config = ScientificWorkflowConfig(
        n_modules=n_modules, seed=seed, public_fraction=0.0
    )
    return scientific_problem(config, kind="cardinality")


@pytest.mark.experiment("E18")
@pytest.mark.parametrize("n_modules", [20, 50, 100])
def test_bench_lp_rounding_scaling(benchmark, n_modules):
    """Algorithm 1 on increasingly large synthetic scientific workflows."""
    problem = _problem(n_modules)
    solution = benchmark(solve_cardinality_rounding, problem, seed=0)
    problem.validate_solution(solution)


@pytest.mark.experiment("E18")
@pytest.mark.parametrize("n_modules", [20, 50, 100])
def test_bench_greedy_scaling(benchmark, n_modules):
    """The greedy baseline on the same instances."""
    problem = _problem(n_modules)
    solution = benchmark(solve_greedy, problem)
    problem.validate_solution(solution)


@pytest.mark.experiment("E18")
def test_bench_solver_scaling_table(benchmark, report_sink):
    """Wall-clock comparison across sizes, with exact optima where affordable."""

    def run():
        rows = []
        for n_modules in (20, 50, 100):
            problem = _problem(n_modules)
            start = time.perf_counter()
            rounding = solve_cardinality_rounding(problem, seed=0)
            rounding_time = time.perf_counter() - start
            start = time.perf_counter()
            greedy = solve_greedy(problem)
            greedy_time = time.perf_counter() - start
            if n_modules <= 50:
                start = time.perf_counter()
                optimum = solve_exact_ip(problem).cost()
                exact_time = time.perf_counter() - start
            else:
                optimum, exact_time = None, None
            rows.append(
                (
                    n_modules,
                    len(problem.workflow.attribute_names),
                    rounding.cost(),
                    rounding_time,
                    greedy.cost(),
                    greedy_time,
                    optimum,
                    exact_time,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for (n, attrs, r_cost, r_time, g_cost, g_time, opt, e_time) in rows:
        table_rows.append(
            [
                n,
                attrs,
                f"{r_cost:.1f} ({r_time:.2f}s)",
                f"{g_cost:.1f} ({g_time:.2f}s)",
                f"{opt:.1f} ({e_time:.2f}s)" if opt is not None else "skipped",
            ]
        )
    report_sink.append(
        (
            "E18: solver scaling on scientific-workflow-shaped instances "
            "(cost and wall time)",
            format_table(
                ["modules", "attributes", "lp rounding", "greedy", "exact IP"],
                table_rows,
            ),
        )
    )
    # Polynomial-time solvers finish quickly even at 100 modules.
    assert all(r_time < 30 for (_, _, _, r_time, *_rest) in rows)
